package storage

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func loadedTable(t *testing.T, keys []int64) (*Table, *Index) {
	t.Helper()
	tb := NewTable("t", MustSchema(Column{Name: "k", Type: KindInt}))
	rows := make([]Row, len(keys))
	for i, k := range keys {
		rows[i] = Row{NewInt(k)}
	}
	if err := tb.BulkInsert(rows); err != nil {
		t.Fatal(err)
	}
	idx, err := tb.CreateIndex("k")
	if err != nil {
		t.Fatal(err)
	}
	return tb, idx
}

func TestIndexEq(t *testing.T) {
	_, idx := loadedTable(t, []int64{5, 3, 5, 1, 5, 9})
	if got := len(idx.Eq(nil, NewInt(5))); got != 3 {
		t.Errorf("Eq(5) = %d rows, want 3", got)
	}
	if got := len(idx.Eq(nil, NewInt(7))); got != 0 {
		t.Errorf("Eq(7) = %d rows, want 0", got)
	}
	if got := len(idx.Eq(nil, Null)); got != 0 {
		t.Errorf("Eq(NULL) = %d rows, want 0", got)
	}
}

func TestIndexRangeBounds(t *testing.T) {
	_, idx := loadedTable(t, []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	cases := []struct {
		lo, hi             Value
		loStrict, hiStrict bool
		want               int
	}{
		{NewInt(3), NewInt(7), false, false, 5}, // 3..7 inclusive
		{NewInt(3), NewInt(7), true, false, 4},  // (3,7]
		{NewInt(3), NewInt(7), false, true, 4},  // [3,7)
		{NewInt(3), NewInt(7), true, true, 3},   // (3,7)
		{Null, NewInt(4), false, false, 4},      // unbounded below
		{NewInt(8), Null, false, false, 3},      // unbounded above
		{Null, Null, false, false, 10},          // full
		{NewInt(20), NewInt(30), false, false, 0},
		{NewInt(7), NewInt(3), false, false, 0}, // inverted
	}
	for _, c := range cases {
		got := len(idx.Range(nil, c.lo, c.loStrict, c.hi, c.hiStrict))
		if got != c.want {
			t.Errorf("Range(%v,%v,%v,%v) = %d, want %d", c.lo, c.loStrict, c.hi, c.hiStrict, got, c.want)
		}
		if cnt := idx.CountRange(c.lo, c.loStrict, c.hi, c.hiStrict); cnt != c.want {
			t.Errorf("CountRange(%v,%v,%v,%v) = %d, want %d", c.lo, c.loStrict, c.hi, c.hiStrict, cnt, c.want)
		}
	}
}

func TestIndexMinMax(t *testing.T) {
	_, idx := loadedTable(t, []int64{4, 2, 9})
	min, max, ok := idx.MinMax()
	if !ok || min.I != 2 || max.I != 9 {
		t.Errorf("MinMax = %v,%v,%v", min, max, ok)
	}
	_, empty := loadedTable(t, nil)
	if _, _, ok := empty.MinMax(); ok {
		t.Error("MinMax on empty index must report !ok")
	}
}

func TestIndexSkipsNullKeys(t *testing.T) {
	tb := NewTable("t", MustSchema(Column{Name: "k", Type: KindInt}))
	if _, err := tb.Insert(Row{Null}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(Row{NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	idx, err := tb.CreateIndex("k")
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 1 {
		t.Errorf("index Len = %d, want 1 (NULL keys excluded)", idx.Len())
	}
}

func TestIndexIncrementalInsertKeepsOrder(t *testing.T) {
	tb := NewTable("t", MustSchema(Column{Name: "k", Type: KindInt}))
	idx, err := tb.CreateIndex("k")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{9, 1, 5, 5, 0, 7} {
		if _, err := tb.Insert(Row{NewInt(k)}); err != nil {
			t.Fatal(err)
		}
	}
	prev := int64(-1 << 62)
	for _, e := range idx.entries {
		if e.key.I < prev {
			t.Fatalf("index out of order: %d after %d", e.key.I, prev)
		}
		prev = e.key.I
	}
	if got := len(idx.Range(nil, NewInt(1), false, NewInt(7), false)); got != 4 {
		t.Errorf("Range(1..7) = %d, want 4", got)
	}
}

// Property: Range(lo..hi) matches a brute-force filter over the heap for
// random multisets and random bounds, all four strictness combinations.
func TestIndexRangeMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(r.Intn(50))
		}
		tb := NewTable("t", MustSchema(Column{Name: "k", Type: KindInt}))
		rows := make([]Row, n)
		for i, k := range keys {
			rows[i] = Row{NewInt(k)}
		}
		if err := tb.BulkInsert(rows); err != nil {
			return false
		}
		idx, err := tb.CreateIndex("k")
		if err != nil {
			return false
		}
		lo, hi := int64(r.Intn(50)), int64(r.Intn(50))
		for _, loS := range []bool{false, true} {
			for _, hiS := range []bool{false, true} {
				got := len(idx.Range(nil, NewInt(lo), loS, NewInt(hi), hiS))
				want := 0
				for _, k := range keys {
					okLo := k > lo || (!loS && k == lo)
					okHi := k < hi || (!hiS && k == hi)
					if okLo && okHi {
						want++
					}
				}
				if got != want {
					return false
				}
				if idx.CountRange(NewInt(lo), loS, NewInt(hi), hiS) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
