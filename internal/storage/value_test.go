package storage

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{NewInt(42), KindInt},
		{NewFloat(3.5), KindFloat},
		{NewString("x"), KindString},
		{NewBool(true), KindBool},
		{NewTime(3600), KindTime},
		{NewDate(100), KindDate},
		{Null, KindNull},
	}
	for _, c := range cases {
		if c.v.K != c.kind {
			t.Errorf("value %v: kind = %v, want %v", c.v, c.v.K, c.kind)
		}
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("Bool() mismatch")
	}
	if Null.Bool() {
		t.Error("NULL must not be truthy")
	}
	if NewInt(7).Int() != 7 {
		t.Error("Int() mismatch")
	}
	if NewInt(7).Float() != 7.0 || NewFloat(2.5).Float() != 2.5 {
		t.Error("Float() coercion mismatch")
	}
}

func TestTimeOfDay(t *testing.T) {
	cases := []struct {
		in   string
		secs int64
		ok   bool
	}{
		{"09:00", 9 * 3600, true},
		{"09:30:15", 9*3600 + 30*60 + 15, true},
		{"00:00", 0, true},
		{"23:59:59", 24*3600 - 1, true},
		{"24:00", 0, false},
		{"9am", 0, false},
		{"", 0, false},
		{"-1:00", 0, false},
	}
	for _, c := range cases {
		v, err := TimeOfDay(c.in)
		if c.ok != (err == nil) {
			t.Errorf("TimeOfDay(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && v.I != c.secs {
			t.Errorf("TimeOfDay(%q) = %d secs, want %d", c.in, v.I, c.secs)
		}
	}
}

func TestMustTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustTime on bad input must panic")
		}
	}()
	MustTime("bogus")
}

func TestCompareSemantics(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{NewInt(1), NewInt(2), -1, true},
		{NewInt(2), NewInt(2), 0, true},
		{NewInt(3), NewInt(2), 1, true},
		{NewInt(1), NewFloat(1.5), -1, true},
		{NewFloat(2.5), NewInt(2), 1, true},
		{NewString("a"), NewString("b"), -1, true},
		{NewString("b"), NewString("b"), 0, true},
		{NewTime(100), NewTime(200), -1, true},
		{NewDate(5), NewDate(5), 0, true},
		{NewTime(100), NewInt(100), 0, true}, // numeric kinds mutually comparable
		{NewString("1"), NewInt(1), 0, false},
		{Null, NewInt(1), 0, false},
		{NewInt(1), Null, 0, false},
		{Null, Null, 0, false},
	}
	for _, c := range cases {
		got, ok := Compare(c.a, c.b)
		if ok != c.ok || (ok && got != c.cmp) {
			t.Errorf("Compare(%v,%v) = %d,%v want %d,%v", c.a, c.b, got, ok, c.cmp, c.ok)
		}
	}
	if Equal(Null, Null) {
		t.Error("NULL must not equal NULL")
	}
	if !Less(NewInt(1), NewInt(2)) || Less(NewInt(2), NewInt(1)) {
		t.Error("Less mismatch")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(-3), "-3"},
		{NewString("o'hare"), "'o''hare'"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
		{Null, "NULL"},
		{NewTime(9*3600 + 5*60), "TIME '09:05:00'"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestRowClone(t *testing.T) {
	r := Row{NewInt(1), NewString("a")}
	c := r.Clone()
	c[0] = NewInt(2)
	if r[0].I != 1 {
		t.Error("Clone must not alias the original")
	}
	if !reflect.DeepEqual(r[1], c[1]) {
		t.Error("Clone must copy values")
	}
}

// randomComparable produces a random value of a random numeric kind so
// Compare is always defined.
func randomNumeric(r *rand.Rand) Value {
	switch r.Intn(4) {
	case 0:
		return NewInt(int64(r.Intn(100) - 50))
	case 1:
		return NewFloat(float64(r.Intn(100)) / 4)
	case 2:
		return NewTime(int64(r.Intn(86400)))
	default:
		return NewDate(int64(r.Intn(1000)))
	}
}

// Property: Compare is antisymmetric and transitive-enough for sorting
// (total order on comparable pairs).
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomNumeric(r), randomNumeric(r)
		ab, ok1 := Compare(a, b)
		ba, ok2 := Compare(b, a)
		if ok1 != ok2 {
			return false
		}
		return !ok1 || ab == -ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Equal is consistent with Compare == 0.
func TestEqualConsistentWithCompareProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomNumeric(r), randomNumeric(r)
		c, ok := Compare(a, b)
		return Equal(a, b) == (ok && c == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
