package storage

import (
	"testing"
	"time"
)

// TestNativeRoundTrip drives every kind through Native → FromNative →
// CoerceKind and requires the original value back — the invariant the
// remote backend's arg binding and row decoding depend on.
func TestNativeRoundTrip(t *testing.T) {
	values := []Value{
		Null,
		NewInt(0),
		NewInt(-42),
		NewInt(1 << 40),
		NewFloat(3.25),
		NewFloat(-0.5),
		NewString(""),
		NewString("O'Brien"),
		NewBool(true),
		NewBool(false),
		MustTime("00:00"),
		MustTime("09:30:15"),
		MustTime("23:59:59"),
		MustDate("2000-01-01"),
		MustDate("1999-12-31"),
		MustDate("2020-02-29"),
		MustDate("2004-03-01"),
	}
	for _, v := range values {
		t.Run(v.String(), func(t *testing.T) {
			back, err := FromNative(v.Native())
			if err != nil {
				t.Fatalf("FromNative(%v.Native()): %v", v, err)
			}
			got, ok := CoerceKind(back, v.K)
			if !ok {
				t.Fatalf("CoerceKind(%v, %v) failed (decoded as %v)", back, v.K, back.K)
			}
			if got != v {
				t.Fatalf("round trip changed the value: %v -> %v -> %v", v, back, got)
			}
		})
	}
}

// TestNativeTypes pins the Go types Native produces — exactly the
// driver.Value set a database/sql driver accepts without conversion.
func TestNativeTypes(t *testing.T) {
	cases := []struct {
		v    Value
		want any
	}{
		{Null, nil},
		{NewInt(7), int64(7)},
		{NewFloat(1.5), float64(1.5)},
		{NewString("x"), "x"},
		{NewBool(true), true},
		{MustTime("08:05"), "08:05:00"},
		{MustDate("2000-01-03"), time.Date(2000, 1, 3, 0, 0, 0, 0, time.UTC)},
	}
	for _, c := range cases {
		got := c.v.Native()
		if !equalNative(got, c.want) {
			t.Errorf("%v.Native() = %#v (%T), want %#v (%T)", c.v, got, got, c.want, c.want)
		}
	}
}

func equalNative(a, b any) bool {
	at, aok := a.(time.Time)
	bt, bok := b.(time.Time)
	if aok || bok {
		return aok && bok && at.Equal(bt)
	}
	return a == b
}

// TestAsTimeDateFromTime checks the DATE ↔ time.Time bijection across the
// epoch and leap boundaries, and that any instant within a day maps to the
// same DATE.
func TestAsTimeDateFromTime(t *testing.T) {
	for _, s := range []string{"2000-01-01", "1997-06-15", "2019-12-31", "2020-02-29", "2100-03-01"} {
		d := MustDate(s)
		tt, ok := d.AsTime()
		if !ok {
			t.Fatalf("AsTime(%s) not ok", s)
		}
		if got := tt.Format("2006-01-02"); got != s {
			t.Errorf("AsTime(%s) = %s", s, got)
		}
		if back := DateFromTime(tt); back != d {
			t.Errorf("DateFromTime(AsTime(%s)) = %v", s, back)
		}
		// A late-evening instant on the same civil day maps to the same DATE.
		if back := DateFromTime(tt.Add(23*time.Hour + 59*time.Minute)); back != d {
			t.Errorf("DateFromTime(%s 23:59) = %v, want %v", s, back, d)
		}
	}
	if _, ok := NewInt(3).AsTime(); ok {
		t.Error("AsTime on INT must not be ok")
	}
	if _, ok := Null.AsTime(); ok {
		t.Error("AsTime on NULL must not be ok")
	}
}

// TestFromNativeWidening covers the forms real drivers hand back that
// Native itself never produces.
func TestFromNativeWidening(t *testing.T) {
	cases := []struct {
		src  any
		want Value
	}{
		{int(5), NewInt(5)},
		{int32(-2), NewInt(-2)},
		{float32(0.5), NewFloat(0.5)},
		{[]byte("bytes"), NewString("bytes")},
		{NewInt(9), NewInt(9)}, // Value passes through
	}
	for _, c := range cases {
		got, err := FromNative(c.src)
		if err != nil {
			t.Fatalf("FromNative(%#v): %v", c.src, err)
		}
		if got != c.want {
			t.Errorf("FromNative(%#v) = %v, want %v", c.src, got, c.want)
		}
	}
	if _, err := FromNative(struct{}{}); err == nil {
		t.Error("FromNative on an unsupported type must error")
	}
}

// TestCoerceKind covers coercions beyond the round-trip set and the
// failure mode: mismatched payloads are rejected, not silently zeroed.
func TestCoerceKind(t *testing.T) {
	if v, ok := CoerceKind(NewString("2001-07-04"), KindDate); !ok || v != MustDate("2001-07-04") {
		t.Errorf("string -> DATE = %v, %v", v, ok)
	}
	if v, ok := CoerceKind(NewInt(1), KindBool); !ok || !v.Bool() {
		t.Errorf("int -> BOOL = %v, %v", v, ok)
	}
	if v, ok := CoerceKind(NewInt(3), KindFloat); !ok || v.F != 3 {
		t.Errorf("int -> FLOAT = %v, %v", v, ok)
	}
	if v, ok := CoerceKind(NewFloat(4), KindInt); !ok || v.I != 4 {
		t.Errorf("whole float -> INT = %v, %v", v, ok)
	}
	if _, ok := CoerceKind(NewFloat(4.5), KindInt); ok {
		t.Error("fractional float -> INT must fail")
	}
	if _, ok := CoerceKind(NewString("not a clock"), KindTime); ok {
		t.Error("unparseable string -> TIME must fail")
	}
	if v, ok := CoerceKind(Null, KindDate); !ok || !v.IsNull() {
		t.Errorf("NULL -> DATE = %v, %v", v, ok)
	}
}
