package storage

// OwnerDictCap bounds the number of distinct owner ids a segment's owner
// dictionary tracks exactly. A segment whose owner column carries more
// distinct values overflows to "any": the dictionary stops enumerating and
// conservatively claims to contain every owner. The cap keeps the metadata
// a few cache lines per segment; with SIEVE's clustered loads (tuples of
// one device land together) real segments stay far below it.
const OwnerDictCap = 32

// OwnerDict summarises the distinct owner ids present in one segment — the
// per-segment refinement of the owner zone map. Where min/max can only
// refute owner sets outside the segment's hull, the dictionary refutes any
// guard partition whose owner set misses every id actually present, which
// is what makes scattered multi-owner disjunctions prunable.
//
// Like zone maps, dictionaries are conservative supersets: inserts and
// updates only add ids, deletes never remove them, and exact contents are
// restored by segment rebuilds (bulk loads, Compact, RebuildSegments).
type OwnerDict struct {
	// ids are the distinct non-NULL integer owner ids seen, unordered.
	// Meaningless once any is set.
	ids []int64
	// any is the overflow state: the segment may contain any owner. Set
	// when the cap is exceeded or a non-integer owner value is seen.
	any bool
	// nulls records whether a NULL owner was seen. NULL owners never match
	// an owner-equality guard, but their presence matters to evaluators
	// that would otherwise skip arms wholesale (three-valued logic).
	nulls bool
}

// add records an owner value; table lock held by callers.
func (d *OwnerDict) add(v Value) {
	if v.IsNull() {
		d.nulls = true
		return
	}
	if d.any {
		return
	}
	if v.K != KindInt {
		// Non-integer owners are outside the dictionary's domain; claim
		// everything rather than mis-refute.
		d.any = true
		d.ids = nil
		return
	}
	for _, id := range d.ids {
		if id == v.I {
			return
		}
	}
	if len(d.ids) >= OwnerDictCap {
		d.any = true
		d.ids = nil
		return
	}
	d.ids = append(d.ids, v.I)
}

// MayContain reports whether the segment could hold a row with owner id.
// True whenever the dictionary cannot prove otherwise.
func (d OwnerDict) MayContain(id int64) bool {
	if d.any {
		return true
	}
	for _, x := range d.ids {
		if x == id {
			return true
		}
	}
	return false
}

// MayContainValue is MayContain for a Value: non-integer and NULL probes
// never refute (NULL probes cannot match rows anyway, and refusing to
// refute keeps the answer conservative for odd kinds).
func (d OwnerDict) MayContainValue(v Value) bool {
	if v.IsNull() || v.K != KindInt {
		return true
	}
	return d.MayContain(v.I)
}

// DisjointFrom reports whether the dictionary provably contains none of
// ids — the refutation test for a guard partition's owner set. An empty
// probe set is vacuously disjoint.
func (d OwnerDict) DisjointFrom(ids []int64) bool {
	if d.any {
		return false
	}
	for _, id := range ids {
		if d.MayContain(id) {
			return false
		}
	}
	return true
}

// Overflowed reports whether the dictionary gave up enumerating.
func (d OwnerDict) Overflowed() bool { return d.any }

// HasNulls reports whether a NULL owner was observed (never reset until a
// rebuild).
func (d OwnerDict) HasNulls() bool { return d.nulls }

// Size returns the number of ids tracked (0 after overflow).
func (d OwnerDict) Size() int { return len(d.ids) }

// IDs returns a copy of the tracked ids (nil after overflow).
func (d OwnerDict) IDs() []int64 {
	if len(d.ids) == 0 {
		return nil
	}
	return append([]int64(nil), d.ids...)
}

// snapshot returns a lock-safe copy: the ids backing array is append-only
// between rebuilds, so sharing the prefix is safe for readers, but copying
// keeps the contract simple for callers that hold the value across later
// mutations.
func (d *OwnerDict) snapshot() OwnerDict {
	return OwnerDict{ids: d.ids[:len(d.ids):len(d.ids)], any: d.any, nulls: d.nulls}
}
