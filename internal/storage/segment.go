package storage

import "fmt"

// SegmentSize is the default number of heap slots per segment. Segments are
// the pruning and parallelism granule of the engine: each carries per-column
// zone maps so a scan can skip whole segments whose value ranges cannot
// satisfy a predicate, and parallel scans hand out work segment by segment.
const SegmentSize = 4096

// ZoneMap summarises one column's values within one segment: the min/max of
// the non-NULL values, the NULL count, and a distinct-value count. Zone maps
// are conservative: incremental inserts and updates only widen them, and
// deletes leave them untouched, so they always cover every live value (they
// may cover more). Exact bounds are restored by segment rebuilds (bulk
// loads, Compact, RebuildSegments).
type ZoneMap struct {
	// Min and Max bound the non-NULL values; both are NULL while the
	// segment holds no non-NULL value in this column.
	Min, Max Value
	// Nulls counts NULL values observed (not decremented on delete).
	Nulls int
	// Distinct is the number of distinct non-NULL values: exact after a
	// rebuild, a lower bound after incremental widening.
	Distinct int
}

// widen grows the zone to cover v.
func (z *ZoneMap) widen(v Value) {
	if v.IsNull() {
		z.Nulls++
		return
	}
	if z.Min.IsNull() {
		z.Min, z.Max, z.Distinct = v, v, 1
		return
	}
	switch {
	case Less(v, z.Min):
		z.Min = v
		z.Distinct++
	case Less(z.Max, v):
		z.Max = v
		z.Distinct++
	}
	// Values inside the bounds cannot be distinguished from seen ones
	// without a set; Distinct stays a lower bound until the next rebuild.
}

// MayContain reports whether the zone could hold a value v with
// lo ≤/< v ≤/< hi (NULL bounds are unbounded, strict flags select open
// bounds). It answers true whenever it cannot prove otherwise, so a false
// return licenses skipping the segment for this predicate.
func (z ZoneMap) MayContain(lo Value, loStrict bool, hi Value, hiStrict bool) bool {
	if z.Min.IsNull() {
		return false // only NULLs here; range and equality predicates never match NULL
	}
	if !lo.IsNull() {
		c, ok := Compare(z.Max, lo)
		if ok && (c < 0 || (loStrict && c == 0)) {
			return false
		}
	}
	if !hi.IsNull() {
		c, ok := Compare(z.Min, hi)
		if ok && (c > 0 || (hiStrict && c == 0)) {
			return false
		}
	}
	return true
}

// MayContainValue reports whether the zone could hold the exact value v.
func (z ZoneMap) MayContainValue(v Value) bool {
	return z.MayContain(v, false, v, false)
}

// segment is the per-segment metadata: the live-row count, one zone map
// per schema column, and — when the table tracks an owner column — the
// bounded dictionary of distinct owner ids. Zone maps cover the rows in
// the segment's slot range [i*segSize, (i+1)*segSize).
type segment struct {
	live   int
	zones  []ZoneMap
	owners OwnerDict
}

// buildSegments computes exact segment metadata for rows. deleted may be
// nil (all rows live). Deleted slots contribute to neither zones nor live
// counts. ownerCol is the schema offset of the tracked owner column (-1
// when untracked) whose distinct values feed the per-segment dictionary.
func buildSegments(ncols int, rows []Row, deleted []bool, segSize int, from int, ownerCol int) []segment {
	if segSize < 1 {
		segSize = SegmentSize
	}
	n := len(rows)
	nSegs := (n + segSize - 1) / segSize
	segs := make([]segment, nSegs-from)
	for s := range segs {
		seg := &segs[s]
		seg.zones = make([]ZoneMap, ncols)
		lo := (from + s) * segSize
		hi := lo + segSize
		if hi > n {
			hi = n
		}
		distinct := make([]map[Value]struct{}, ncols)
		for c := range distinct {
			distinct[c] = make(map[Value]struct{})
		}
		for i := lo; i < hi; i++ {
			if deleted != nil && deleted[i] {
				continue
			}
			seg.live++
			if ownerCol >= 0 {
				seg.owners.add(rows[i][ownerCol])
			}
			for c, v := range rows[i] {
				z := &seg.zones[c]
				if v.IsNull() {
					z.Nulls++
					continue
				}
				if z.Min.IsNull() || Less(v, z.Min) {
					z.Min = v
				}
				if z.Max.IsNull() || Less(z.Max, v) {
					z.Max = v
				}
				distinct[c][v] = struct{}{}
			}
		}
		for c := range seg.zones {
			seg.zones[c].Distinct = len(distinct[c])
		}
	}
	return segs
}

// View is a consistent point-in-time view of a table's heap, segments
// included. Reads synchronise with in-place mutators (Insert, Update,
// Delete) through the table lock, while Compact's copy-on-write swap leaves
// the captured slices frozen — a scan that started before a Compact
// finishes over the pre-compact heap instead of observing shifted row ids.
// Rows appended after capture fall outside the captured length and are not
// observed (read-committed scan, segment granularity).
type View struct {
	t        *Table
	rows     []Row
	deleted  []bool
	segs     []segment
	segSize  int
	ownerCol int
	indexes  map[string]*Index
}

// View captures the current heap for scanning. The secondary indexes are
// captured in the same lock acquisition, so row ids fetched through
// View.Index resolve against the same heap View.Get reads — consistent
// even when a Compact swaps the table's heap and indexes in between.
func (t *Table) View() *View {
	t.mu.RLock()
	defer t.mu.RUnlock()
	indexes := make(map[string]*Index, len(t.indexes))
	for c, ix := range t.indexes {
		indexes[c] = ix
	}
	return &View{t: t, rows: t.rows, deleted: t.deleted, segs: t.segs, segSize: t.segSize, ownerCol: t.ownerCol, indexes: indexes}
}

// Index returns the captured index on col, if any. It belongs to the same
// heap generation as the view's rows.
func (v *View) Index(col string) (*Index, bool) {
	ix, ok := v.indexes[col]
	return ix, ok
}

// NumSegments returns the number of segments in the view.
func (v *View) NumSegments() int { return len(v.segs) }

// SegmentRows returns the view's segment size in heap slots.
func (v *View) SegmentRows() int { return v.segSize }

// Zones copies the zone maps of the requested columns in segment seg into
// out (which must have len(cols)) and returns the segment's live-row count,
// all under one lock acquisition.
func (v *View) Zones(seg int, cols []int, out []ZoneMap) (live int) {
	v.t.mu.RLock()
	defer v.t.mu.RUnlock()
	s := &v.segs[seg]
	for i, c := range cols {
		out[i] = s.zones[c]
	}
	return s.live
}

// OwnerColumn returns the schema offset of the owner column the view's
// table tracked at capture time, or -1.
func (v *View) OwnerColumn() int { return v.ownerCol }

// Owners returns a snapshot of segment seg's owner dictionary under the
// table lock; ok is false when owners are untracked.
func (v *View) Owners(seg int) (OwnerDict, bool) {
	if v.ownerCol < 0 {
		return OwnerDict{}, false
	}
	v.t.mu.RLock()
	defer v.t.mu.RUnlock()
	return v.segs[seg].owners.snapshot(), true
}

// ScanSegment appends segment seg's live rows to dst and returns it. The
// copy happens under the table's read lock; evaluation of the returned rows
// can then proceed without holding any lock (rows are immutable once
// stored).
func (v *View) ScanSegment(seg int, dst []Row) []Row {
	v.t.mu.RLock()
	defer v.t.mu.RUnlock()
	lo := seg * v.segSize
	hi := lo + v.segSize
	if hi > len(v.rows) {
		hi = len(v.rows)
	}
	for i := lo; i < hi; i++ {
		if !v.deleted[i] {
			dst = append(dst, v.rows[i])
		}
	}
	return dst
}

// NumSlots returns the captured heap length in slots, tombstones included.
// Together with SegmentSlots it lets a snapshot writer serialise the heap
// exactly — preserving slot numbering so row ids stay stable across a
// recovery replay.
func (v *View) NumSlots() int { return len(v.rows) }

// SegmentSlots calls fn for every heap slot of segment seg in slot order,
// tombstones included (live=false, r=nil). Returning false stops the
// iteration. The walk happens under the table's read lock, against the
// captured heap; rows must not be retained past a concurrent Compact
// unless cloned.
func (v *View) SegmentSlots(seg int, fn func(id RowID, r Row, live bool) bool) {
	v.t.mu.RLock()
	defer v.t.mu.RUnlock()
	lo := seg * v.segSize
	hi := lo + v.segSize
	if hi > len(v.rows) {
		hi = len(v.rows)
	}
	for i := lo; i < hi; i++ {
		if v.deleted[i] {
			if !fn(RowID(i), nil, false) {
				return
			}
			continue
		}
		if !fn(RowID(i), v.rows[i], true) {
			return
		}
	}
}

// Get returns the row for id within the view, ok=false for tombstoned or
// out-of-range ids. Ids refer to the captured heap, so index fetch lists
// resolved against the same view stay consistent across a concurrent
// Compact.
func (v *View) Get(id RowID) (Row, bool) {
	v.t.mu.RLock()
	defer v.t.mu.RUnlock()
	if id < 0 || int(id) >= len(v.rows) || v.deleted[id] {
		return nil, false
	}
	return v.rows[id], true
}

// segIndexFor returns the segment covering heap slot i; the table lock must
// be held.
func (t *Table) segIndexFor(i int) int { return i / t.segSize }

// widenSegment grows segment metadata to cover a row stored at heap slot i;
// the table write lock must be held. New trailing segments are created on
// demand.
func (t *Table) widenSegment(i int, r Row, countLive bool) {
	s := t.segIndexFor(i)
	for len(t.segs) <= s {
		t.segs = append(t.segs, segment{zones: make([]ZoneMap, t.Schema.Len())})
	}
	seg := &t.segs[s]
	if countLive {
		seg.live++
	}
	if t.ownerCol >= 0 {
		seg.owners.add(r[t.ownerCol])
	}
	for c, v := range r {
		seg.zones[c].widen(v)
	}
}

// RebuildSegments recomputes exact segment metadata (zone maps, owner
// dictionaries, live counts) for the whole heap. The rebuild allocates
// fresh metadata and swaps it in under the write lock, so open Views keep
// their captured (conservative) metadata.
func (t *Table) RebuildSegments() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.segs = buildSegments(t.Schema.Len(), t.rows, t.deleted, t.segSize, 0, t.ownerCol)
}

// SetSegmentSize changes the table's segment granule (default SegmentSize)
// and rebuilds segment metadata. Intended for tests and benchmarks that
// need many segments from small corpora; n < 1 resets to the default.
func (t *Table) SetSegmentSize(n int) {
	if n < 1 {
		n = SegmentSize
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.segSize = n
	t.segs = buildSegments(t.Schema.Len(), t.rows, t.deleted, t.segSize, 0, t.ownerCol)
}

// TrackOwners designates col as the table's owner column and rebuilds
// segment metadata so every segment carries an exact owner dictionary.
// SIEVE's middleware calls it when protecting a relation (the paper's
// mandatory indexed owner attribute, §3.1); from then on inserts and
// updates keep the dictionaries conservative supersets of the live owners.
func (t *Table) TrackOwners(col string) error {
	ci := t.Schema.ColumnIndex(col)
	if ci < 0 {
		return fmt.Errorf("table %s: no column %q to track owners on", t.Name, col)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ownerCol == ci {
		return nil
	}
	t.ownerCol = ci
	t.segs = buildSegments(t.Schema.Len(), t.rows, t.deleted, t.segSize, 0, t.ownerCol)
	return nil
}

// OwnerColumn returns the schema offset of the tracked owner column, or -1
// when TrackOwners has not been called.
func (t *Table) OwnerColumn() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.ownerCol
}

// SegmentOwners returns a snapshot of segment seg's owner dictionary; ok
// is false when seg is out of range or owners are untracked.
func (t *Table) SegmentOwners(seg int) (OwnerDict, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.ownerCol < 0 || seg < 0 || seg >= len(t.segs) {
		return OwnerDict{}, false
	}
	return t.segs[seg].owners.snapshot(), true
}

// SegmentCount returns the current number of segments.
func (t *Table) SegmentCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.segs)
}

// SegmentZone returns the zone map of column col in segment seg; ok is
// false when the column does not exist or seg is out of range.
func (t *Table) SegmentZone(seg int, col string) (ZoneMap, bool) {
	ci := t.Schema.ColumnIndex(col)
	t.mu.RLock()
	defer t.mu.RUnlock()
	if ci < 0 || seg < 0 || seg >= len(t.segs) {
		return ZoneMap{}, false
	}
	return t.segs[seg].zones[ci], true
}

// SegmentLive returns the live-row count of segment seg.
func (t *Table) SegmentLive(seg int) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if seg < 0 || seg >= len(t.segs) {
		return 0
	}
	return t.segs[seg].live
}

// PruneFracRange returns the fraction of heap slots living in segments
// whose zone maps rule out every value in [lo, hi] of column col (NULL
// bounds unbounded) — the share of the relation a zone-mapped scan skips
// for that predicate. Unknown columns prune nothing.
func (t *Table) PruneFracRange(col string, lo, hi Value) float64 {
	ci := t.Schema.ColumnIndex(col)
	if ci < 0 {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.rows) == 0 {
		return 0
	}
	prunedSlots := 0
	for s := range t.segs {
		seg := &t.segs[s]
		if seg.live > 0 && seg.zones[ci].MayContain(lo, false, hi, false) {
			continue
		}
		slots := t.segSize
		if last := len(t.rows) - s*t.segSize; last < slots {
			slots = last
		}
		prunedSlots += slots
	}
	return float64(prunedSlots) / float64(len(t.rows))
}

// ZoneArm is one disjunct of a guarded expression reduced to its interval
// form: values of Col in [Lo, Hi] (NULL bounds unbounded). Owners, when
// set, is the arm's guard-partition owner set: segments whose owner
// dictionary is disjoint from it are refuted for this arm even when the
// interval alone cannot decide (the arm requires the tuple's owner to be
// one of the partition's owners).
type ZoneArm struct {
	Col    string
	Lo, Hi Value
	Owners []int64
}

// PrunableSegments counts the segments whose metadata refutes every arm —
// no arm's interval intersects the segment's zone for its column, or the
// arm's owner set is disjoint from the segment's owner dictionary — under
// one lock acquisition. Empty segments are always prunable; an arm on an
// unknown column may match anywhere and keeps every segment alive. With no
// arms at all, nothing can match and every segment is prunable (the
// default-deny shape).
func (t *Table) PrunableSegments(arms []ZoneArm) (pruned, total int) {
	cols := make([]int, len(arms))
	for i, a := range arms {
		cols[i] = t.Schema.ColumnIndex(a.Col)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	total = len(t.segs)
	for s := range t.segs {
		seg := &t.segs[s]
		if seg.live == 0 {
			pruned++
			continue
		}
		survives := false
		for i, a := range arms {
			refuted := false
			if cols[i] >= 0 && !seg.zones[cols[i]].MayContain(a.Lo, false, a.Hi, false) {
				refuted = true
			}
			if !refuted && len(a.Owners) > 0 && t.ownerCol >= 0 && seg.owners.DisjointFrom(a.Owners) {
				refuted = true
			}
			if !refuted {
				survives = true
				break
			}
		}
		if !survives {
			pruned++
		}
	}
	return pruned, total
}

// PruneFracOwners returns the fraction of heap slots living in segments
// whose owner dictionaries are provably disjoint from ids — the share of
// the relation an owner-aware scan skips for a guard partition with that
// owner set. col must be the tracked owner column; anything else (or an
// untracked table, or an empty id set) prunes nothing.
func (t *Table) PruneFracOwners(col string, ids []int64) float64 {
	ci := t.Schema.ColumnIndex(col)
	t.mu.RLock()
	defer t.mu.RUnlock()
	if ci < 0 || ci != t.ownerCol || len(ids) == 0 || len(t.rows) == 0 {
		return 0
	}
	prunedSlots := 0
	for s := range t.segs {
		seg := &t.segs[s]
		if seg.live > 0 && !seg.owners.DisjointFrom(ids) {
			continue
		}
		slots := t.segSize
		if last := len(t.rows) - s*t.segSize; last < slots {
			slots = last
		}
		prunedSlots += slots
	}
	return float64(prunedSlots) / float64(len(t.rows))
}

// Mutations returns the table's monotonically increasing mutation count
// (inserts, updates, deletes, bulk loads by row). Statistics record the
// count they were built at; auto-analyze compares against it to detect
// staleness.
func (t *Table) Mutations() int64 { return t.muts.Load() }
