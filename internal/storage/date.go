package storage

import (
	"fmt"
	"strconv"
	"strings"
)

// dateEpochYear anchors DATE values: day 0 is 2000-01-01, matching the
// generated datasets (three months of WiFi logs land in small positive
// integers, keeping histograms readable in experiment output).
const dateEpochYear = 2000

func isLeap(y int) bool { return y%4 == 0 && (y%100 != 0 || y%400 == 0) }

var daysInMonth = [12]int{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}

// DateFromYMD converts a civil date to days since 2000-01-01.
func DateFromYMD(year, month, day int) (Value, error) {
	if month < 1 || month > 12 {
		return Null, fmt.Errorf("storage: month %d out of range", month)
	}
	dim := daysInMonth[month-1]
	if month == 2 && isLeap(year) {
		dim = 29
	}
	if day < 1 || day > dim {
		return Null, fmt.Errorf("storage: day %d out of range for %d-%02d", day, year, month)
	}
	days := 0
	if year >= dateEpochYear {
		for y := dateEpochYear; y < year; y++ {
			days += 365
			if isLeap(y) {
				days++
			}
		}
	} else {
		for y := year; y < dateEpochYear; y++ {
			days -= 365
			if isLeap(y) {
				days--
			}
		}
	}
	for m := 1; m < month; m++ {
		days += daysInMonth[m-1]
		if m == 2 && isLeap(year) {
			days++
		}
	}
	return NewDate(int64(days + day - 1)), nil
}

// ParseDate parses "YYYY-MM-DD" into a DATE value.
func ParseDate(s string) (Value, error) {
	parts := strings.Split(s, "-")
	if len(parts) != 3 {
		return Null, fmt.Errorf("storage: invalid date %q", s)
	}
	nums := make([]int, 3)
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil {
			return Null, fmt.Errorf("storage: invalid date %q", s)
		}
		nums[i] = n
	}
	return DateFromYMD(nums[0], nums[1], nums[2])
}

// MustDate is ParseDate that panics; for literals in tests and generators.
func MustDate(s string) Value {
	v, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return v
}

// FormatDate renders a DATE value as YYYY-MM-DD.
func FormatDate(v Value) string {
	days := int(v.I)
	year := dateEpochYear
	for {
		y := 365
		if isLeap(year) {
			y++
		}
		if days >= y {
			days -= y
			year++
		} else if days < 0 {
			year--
			y = 365
			if isLeap(year) {
				y++
			}
			days += y
		} else {
			break
		}
	}
	month := 1
	for {
		dim := daysInMonth[month-1]
		if month == 2 && isLeap(year) {
			dim = 29
		}
		if days < dim {
			break
		}
		days -= dim
		month++
	}
	return fmt.Sprintf("%04d-%02d-%02d", year, month, days+1)
}
