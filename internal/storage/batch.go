package storage

// Batch is a columnar view of one segment's live rows: the rows in heap
// order, per-column value vectors materialised on demand, and a selection
// bitmap the evaluator narrows as predicates are applied. A Batch is the
// unit of vectorised guard evaluation — the engine runs each compiled
// conjunct column-at-a-time over the vectors instead of interpreting the
// expression tree once per row.
//
// A Batch is owned by one scan cursor (or one parallel-scan worker) and is
// reused segment after segment; it is not safe for concurrent use. Rows are
// immutable once stored, so the vectors may be read without any lock after
// ScanBatch returns.
type Batch struct {
	rows  []Row
	cols  [][]Value
	built []bool
	// Sel is the selection bitmap: Sel[i] reports whether row i is still a
	// candidate. ScanBatch resets every entry to true.
	Sel []bool
}

// Len returns the number of live rows in the batch.
func (b *Batch) Len() int { return len(b.rows) }

// Row returns row i (the full stored tuple, schema order).
func (b *Batch) Row(i int) Row { return b.rows[i] }

// Rows returns the underlying row slice, valid until the next ScanBatch.
func (b *Batch) Rows() []Row { return b.rows }

// Col returns the value vector of schema column c, materialising and
// caching it on first use so only referenced columns pay the gather cost.
func (b *Batch) Col(c int) []Value {
	if !b.built[c] {
		vec := b.cols[c][:0]
		for _, r := range b.rows {
			vec = append(vec, r[c])
		}
		b.cols[c] = vec
		b.built[c] = true
	}
	return b.cols[c]
}

// Selected counts the rows still selected.
func (b *Batch) Selected() int {
	n := 0
	for _, s := range b.Sel {
		if s {
			n++
		}
	}
	return n
}

// reset prepares the batch for ncols-wide rows, clearing cached vectors and
// the selection bitmap while keeping capacity.
func (b *Batch) reset(ncols int) {
	b.rows = b.rows[:0]
	if len(b.cols) != ncols {
		b.cols = make([][]Value, ncols)
		b.built = make([]bool, ncols)
	}
	for c := range b.built {
		b.built[c] = false
	}
}

// finish sizes the selection bitmap to the loaded rows, all selected.
func (b *Batch) finish() {
	if cap(b.Sel) < len(b.rows) {
		b.Sel = make([]bool, len(b.rows))
	} else {
		b.Sel = b.Sel[:len(b.rows)]
	}
	for i := range b.Sel {
		b.Sel[i] = true
	}
}

// ScanBatch loads segment seg's live rows into b, resetting its vectors
// and selection bitmap. The row copy happens under the table's read lock,
// exactly like ScanSegment; vector materialisation is deferred to Col and
// needs no lock. It returns b.Len().
func (v *View) ScanBatch(seg int, b *Batch) int {
	b.reset(v.t.Schema.Len())
	v.t.mu.RLock()
	lo := seg * v.segSize
	hi := lo + v.segSize
	if hi > len(v.rows) {
		hi = len(v.rows)
	}
	for i := lo; i < hi; i++ {
		if !v.deleted[i] {
			b.rows = append(b.rows, v.rows[i])
		}
	}
	v.t.mu.RUnlock()
	b.finish()
	return b.Len()
}
