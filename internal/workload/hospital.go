package workload

import (
	"fmt"
	"math/rand"

	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/policy"
	"github.com/sieve-db/sieve/internal/storage"
)

// HospitalConfig scales the hospital workload: a vitals-monitoring
// dataset whose access control runs through a deep group hierarchy
// (hospital → department → ward → role) instead of the campus's flat
// affinity groups. It is the traffic harness's third scenario: group
// grants four levels up must reach the right staff and nobody else.
type HospitalConfig struct {
	Seed         int64
	Patients     int
	Departments  int
	WardsPerDept int
	StaffPerWard int
	Days         int
	// ReadingsPerPatientDay is the mean vitals readings recorded per
	// patient per active day.
	ReadingsPerPatientDay int
}

// TestHospitalConfig is sized for unit tests.
func TestHospitalConfig() HospitalConfig {
	return HospitalConfig{Seed: 4, Patients: 240, Departments: 4, WardsPerDept: 3,
		StaffPerWard: 4, Days: 10, ReadingsPerPatientDay: 3}
}

// BenchHospitalConfig is the experiment scale.
func BenchHospitalConfig() HospitalConfig {
	return HospitalConfig{Seed: 4, Patients: 2400, Departments: 8, WardsPerDept: 5,
		StaffPerWard: 8, Days: 45, ReadingsPerPatientDay: 5}
}

// Hospital relation names.
const (
	TableStaff  = "Hospital_Staff"
	TableVitals = "Vitals_Dataset"
)

// HospitalRoles are the staff roles; every ward's first staff member is a
// doctor so role-scoped grants always have a grantee.
var HospitalRoles = []string{"doctor", "nurse", "orderly"}

// StaffQuerier is the querier identity of a staff member.
func StaffQuerier(id int64) string { return fmt.Sprintf("hs:%d", id) }

// WardGroup is the group principal of one ward of one department.
func WardGroup(dept, ward int) string { return fmt.Sprintf("ward:%d-%d", dept, ward) }

// DeptGroup is the group principal of a department.
func DeptGroup(dept int) string { return fmt.Sprintf("dept:%d", dept) }

// HospitalGroup is the hospital-wide group principal.
const HospitalGroup = "hospital:all"

// RoleGroup is the hospital-wide principal of one role.
func RoleGroup(role string) string { return "role:" + role }

// DeptRoleGroup is the principal of one role within one department
// (e.g. "the cardiology doctors").
func DeptRoleGroup(dept int, role string) string {
	return fmt.Sprintf("dept:%d-role:%s", dept, role)
}

// StaffMember is one hospital staff querier.
type StaffMember struct {
	ID   int64
	Dept int
	Ward int // within the department
	Role string
}

// Querier returns the staff member's querier identity.
func (s StaffMember) Querier() string { return StaffQuerier(s.ID) }

// Patient is one vitals owner.
type Patient struct {
	ID   int64
	Dept int
	Ward int // within the department
	// Attending is the staff ID of the patient's attending doctor.
	Attending int64
}

// Hospital is the generated hospital database.
type Hospital struct {
	Cfg         HospitalConfig
	DB          *engine.DB
	Staff       []StaffMember
	Patients    []Patient
	NumReadings int
	groups      policy.StaticGroups
}

// globalWard maps (dept, ward-within-dept) to the ward id stored in the
// vitals relation.
func (h *Hospital) globalWard(dept, ward int) int64 {
	return int64(dept*h.Cfg.WardsPerDept + ward)
}

// BuildHospital generates the dataset into a fresh database, indexes the
// vitals relation's query/guard attributes, and runs ANALYZE. Staff group
// membership forms the four-level closure hospital → department → ward →
// role: each staff querier belongs to its ward, its department, the
// hospital, its role hospital-wide, and its role within its department.
func BuildHospital(cfg HospitalConfig, dialect engine.Dialect) (*Hospital, error) {
	db := engine.New(dialect)
	h := &Hospital{Cfg: cfg, DB: db, groups: policy.StaticGroups{}}
	r := rand.New(rand.NewSource(cfg.Seed))

	staffSchema := storage.MustSchema(
		storage.Column{Name: "id", Type: storage.KindInt},
		storage.Column{Name: "name", Type: storage.KindString},
		storage.Column{Name: "role", Type: storage.KindString},
		storage.Column{Name: "ward", Type: storage.KindInt},
	)
	vitalsSchema := storage.MustSchema(
		storage.Column{Name: "id", Type: storage.KindInt},
		storage.Column{Name: "ward", Type: storage.KindInt},
		storage.Column{Name: "owner", Type: storage.KindInt},
		storage.Column{Name: "pulse", Type: storage.KindInt},
		storage.Column{Name: "ts_time", Type: storage.KindTime},
		storage.Column{Name: "ts_date", Type: storage.KindDate},
	)
	for _, t := range []struct {
		name   string
		schema *storage.Schema
	}{{TableStaff, staffSchema}, {TableVitals, vitalsSchema}} {
		if _, err := db.CreateTable(t.name, t.schema); err != nil {
			return nil, err
		}
	}

	var srows []storage.Row
	id := int64(0)
	for d := 0; d < cfg.Departments; d++ {
		for w := 0; w < cfg.WardsPerDept; w++ {
			for s := 0; s < cfg.StaffPerWard; s++ {
				role := HospitalRoles[s%len(HospitalRoles)]
				m := StaffMember{ID: id, Dept: d, Ward: w, Role: role}
				h.Staff = append(h.Staff, m)
				h.groups[m.Querier()] = []string{
					WardGroup(d, w), DeptGroup(d), HospitalGroup,
					RoleGroup(role), DeptRoleGroup(d, role),
				}
				srows = append(srows, storage.Row{
					storage.NewInt(id),
					storage.NewString(fmt.Sprintf("staff-%04d", id)),
					storage.NewString(role),
					storage.NewInt(h.globalWard(d, w)),
				})
				id++
			}
		}
	}
	if err := db.BulkInsert(TableStaff, srows); err != nil {
		return nil, err
	}

	h.Patients = make([]Patient, cfg.Patients)
	for i := range h.Patients {
		p := Patient{ID: int64(i), Dept: r.Intn(cfg.Departments), Ward: r.Intn(cfg.WardsPerDept)}
		// The ward's first staff member is always a doctor.
		p.Attending = int64((p.Dept*cfg.WardsPerDept + p.Ward) * cfg.StaffPerWard)
		h.Patients[i] = p
	}

	var rows []storage.Row
	id = 0
	for _, p := range h.Patients {
		ward := h.globalWard(p.Dept, p.Ward)
		for d := 0; d < cfg.Days; d++ {
			if r.Float64() > 0.8 {
				continue
			}
			n := 1 + r.Intn(cfg.ReadingsPerPatientDay)
			for e := 0; e < n; e++ {
				// Vitals rounds cluster between 06:00 and 22:59.
				secs := int64(6+r.Intn(17))*3600 + int64(r.Intn(3600))
				pulse := int64(50 + r.Intn(81))
				rows = append(rows, storage.Row{
					storage.NewInt(id), storage.NewInt(ward), storage.NewInt(p.ID),
					storage.NewInt(pulse), storage.NewTime(secs), storage.NewDate(int64(d)),
				})
				id++
			}
		}
	}
	h.NumReadings = len(rows)
	if err := db.BulkInsert(TableVitals, rows); err != nil {
		return nil, err
	}
	for _, col := range []string{"owner", "ward", "ts_time", "ts_date"} {
		if err := db.CreateIndex(TableVitals, col); err != nil {
			return nil, err
		}
	}
	if err := db.Analyze(TableVitals); err != nil {
		return nil, err
	}
	return h, nil
}

// Groups returns the staff group-membership resolver (the four-level
// hierarchy closure).
func (h *Hospital) Groups() policy.Groups { return h.groups }

// GeneratePolicies builds the hospital policy corpus: every patient grants
// their home ward's staff during the day shift and their attending doctor
// unconditionally; some add department-doctor grants over an admission
// window, department-wide night-shift grants, or a hospital-wide
// high-pulse safety grant under the "safety" purpose.
func (h *Hospital) GeneratePolicies(seed int64) []*policy.Policy {
	r := rand.New(rand.NewSource(seed))
	dayShift := policy.RangeClosed("ts_time", storage.MustTime("07:00"), storage.MustTime("19:00"))
	nightShift := policy.RangeClosed("ts_time", storage.MustTime("19:00"), storage.MustTime("23:00"))
	var out []*policy.Policy
	for _, p := range h.Patients {
		out = append(out, &policy.Policy{
			Owner: p.ID, Querier: WardGroup(p.Dept, p.Ward), Purpose: "treatment",
			Relation: TableVitals, Action: policy.Allow,
			Conditions: []policy.ObjectCondition{dayShift},
		})
		out = append(out, &policy.Policy{
			Owner: p.ID, Querier: StaffQuerier(p.Attending), Purpose: policy.AnyPurpose,
			Relation: TableVitals, Action: policy.Allow,
		})
		if r.Float64() < 0.5 {
			start := r.Intn(h.Cfg.Days)
			out = append(out, &policy.Policy{
				Owner: p.ID, Querier: DeptRoleGroup(p.Dept, "doctor"), Purpose: "treatment",
				Relation: TableVitals, Action: policy.Allow,
				Conditions: []policy.ObjectCondition{policy.RangeClosed("ts_date",
					storage.NewDate(int64(start)), storage.NewDate(int64(start+7)))},
			})
		}
		if r.Float64() < 0.25 {
			out = append(out, &policy.Policy{
				Owner: p.ID, Querier: DeptGroup(p.Dept), Purpose: "treatment",
				Relation: TableVitals, Action: policy.Allow,
				Conditions: []policy.ObjectCondition{nightShift},
			})
		}
		if r.Float64() < 0.3 {
			out = append(out, &policy.Policy{
				Owner: p.ID, Querier: HospitalGroup, Purpose: "safety",
				Relation: TableVitals, Action: policy.Allow,
				Conditions: []policy.ObjectCondition{policy.RangeClosed("pulse",
					storage.NewInt(110), storage.NewInt(200))},
			})
		}
	}
	return out
}

// CorpusQueries is the hospital examples corpus: the rounds and chart
// lookups ward staff run, plus the aggregations a charge nurse would.
// SELECT * shapes over the vitals relation are what the traffic harness's
// invariant checker can justify row by row.
func (h *Hospital) CorpusQueries() []NamedQuery {
	totalWards := h.Cfg.Departments * h.Cfg.WardsPerDept
	wards := ""
	for w := 0; w < totalWards && w < 5; w++ {
		if w > 0 {
			wards += ", "
		}
		wards += fmt.Sprintf("%d", w)
	}
	recentLo := storage.FormatDate(storage.NewDate(int64(maxi(0, h.Cfg.Days-3))))
	recentHi := storage.FormatDate(storage.NewDate(int64(h.Cfg.Days)))
	return []NamedQuery{
		{Name: "day_shift", SQL: "SELECT * FROM " + TableVitals +
			" AS V WHERE V.ts_time BETWEEN TIME '08:00' AND TIME '12:00'"},
		{Name: "ward_rounds", SQL: "SELECT * FROM " + TableVitals +
			" AS V WHERE V.ward IN (" + wards + ")"},
		{Name: "recent_vitals", SQL: fmt.Sprintf(
			"SELECT * FROM %s AS V WHERE V.ts_date BETWEEN DATE '%s' AND DATE '%s'",
			TableVitals, recentLo, recentHi)},
		{Name: "patient_chart", SQL: "SELECT * FROM " + TableVitals +
			" AS V WHERE V.owner IN (0, 1, 2, 3)"},
		{Name: "tachycardia", SQL: "SELECT * FROM " + TableVitals +
			" AS V WHERE V.pulse >= 110"},
		{Name: "ward_census", SQL: "SELECT V.ward, count(*) AS readings FROM " + TableVitals +
			" AS V GROUP BY V.ward ORDER BY readings DESC LIMIT 5"},
		{Name: "night_volume", SQL: "SELECT count(*) FROM " + TableVitals +
			" AS V WHERE V.ts_time BETWEEN TIME '19:00' AND TIME '23:00'"},
	}
}
