package workload

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/policy"
)

func testCampus(t *testing.T) *Campus {
	t.Helper()
	c, err := BuildCampus(TestCampusConfig(), engine.MySQL())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildCampusDeterministic(t *testing.T) {
	a := testCampus(t)
	b := testCampus(t)
	if a.NumEvents != b.NumEvents {
		t.Fatalf("non-deterministic events: %d vs %d", a.NumEvents, b.NumEvents)
	}
	if a.NumEvents == 0 {
		t.Fatal("no events generated")
	}
	if len(a.Users) != a.Cfg.Devices {
		t.Fatalf("users = %d", len(a.Users))
	}
	for i := range a.Users {
		if a.Users[i] != b.Users[i] {
			t.Fatalf("user %d differs across builds", i)
		}
	}
}

func TestCampusPopulationShape(t *testing.T) {
	c := testCampus(t)
	counts := map[Profile]int{}
	for _, u := range c.Users {
		counts[u.Profile]++
	}
	// Visitors dominate (~87% in the paper).
	if frac := float64(counts[Visitor]) / float64(len(c.Users)); frac < 0.75 || frac > 0.95 {
		t.Errorf("visitor fraction = %.2f, want ≈0.87", frac)
	}
	for _, p := range []Profile{Staff, Faculty, Undergrad, Grad} {
		if counts[p] == 0 {
			t.Errorf("no %s users generated", p)
		}
	}
	// Events are owned by known users and times are within the day.
	res, err := c.DB.Query("SELECT count(*), min(ts_time), max(ts_time) FROM " + TableWiFi)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != int64(c.NumEvents) {
		t.Errorf("loaded events = %v, want %d", res.Rows[0][0], c.NumEvents)
	}
	if res.Rows[0][2].I >= 24*3600 {
		t.Errorf("event time out of range: %v", res.Rows[0][2])
	}
}

func TestCampusTablesQueryable(t *testing.T) {
	c := testCampus(t)
	res, err := c.DB.Query(
		"SELECT count(*) FROM " + TableMembership + " AS M, " + TableUsers + " AS U WHERE M.user_id = U.id")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != int64(c.Cfg.Devices) {
		t.Fatalf("membership join = %v, want %d", res.Rows[0][0], c.Cfg.Devices)
	}
	loc, err := c.DB.Query("SELECT count(*) FROM " + TableLocation)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Rows[0][0].I != int64(c.Cfg.APs) {
		t.Fatalf("locations = %v", loc.Rows[0][0])
	}
}

func TestGeneratePoliciesShape(t *testing.T) {
	c := testCampus(t)
	ps := c.GeneratePolicies(TestPolicyConfig())
	if len(ps) == 0 {
		t.Fatal("no policies")
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Fatalf("invalid generated policy: %v (%s)", err, p)
		}
		if p.Relation != TableWiFi {
			t.Fatalf("policy on %q", p.Relation)
		}
	}
	counts := QuerierCounts(ps)
	if len(counts) < 5 {
		t.Fatalf("only %d distinct queriers", len(counts))
	}
	top := TopQueriers(ps, 3, 1)
	if len(top) != 3 || counts[top[0]] < counts[top[1]] || counts[top[1]] < counts[top[2]] {
		t.Fatalf("TopQueriers not descending: %v", top)
	}
	// Determinism.
	ps2 := testCampusPolicies(t)
	if len(ps) != len(ps2) {
		t.Fatalf("non-deterministic policy count: %d vs %d", len(ps), len(ps2))
	}
	// Unconcerned users contribute the two default policies.
	defaults := 0
	for _, p := range ps {
		if p.Purpose == policy.AnyPurpose {
			defaults++
		}
	}
	if defaults == 0 {
		t.Error("no default policies generated")
	}
}

func testCampusPolicies(t *testing.T) []*policy.Policy {
	t.Helper()
	return testCampus(t).GeneratePolicies(TestPolicyConfig())
}

func TestGroupsResolver(t *testing.T) {
	c := testCampus(t)
	u := c.Users[0]
	gs := c.Groups().GroupsOf(u.Name())
	if len(gs) != 2 {
		t.Fatalf("groups = %v", gs)
	}
	wantGroup, wantProfile := GroupName(u.Group), ProfileName(u.Profile)
	if gs[0] != wantGroup || gs[1] != wantProfile {
		t.Fatalf("groups = %v, want [%s %s]", gs, wantGroup, wantProfile)
	}
}

func TestQueryTemplatesParseAndRun(t *testing.T) {
	c := testCampus(t)
	r := rand.New(rand.NewSource(9))
	for _, tmpl := range QueryTemplates {
		for _, class := range SelectivityClasses {
			q := c.Query(tmpl, class, r)
			res, err := c.DB.Query(q)
			if err != nil {
				t.Fatalf("%s/%s: %v\n%s", tmpl, class, err, q)
			}
			_ = res
		}
	}
	// Selectivity ordering: high-class Q1 should match at least as many
	// rows as low-class Q1 on average.
	lowN, highN := 0, 0
	for i := 0; i < 10; i++ {
		lq := c.Queries(Q1, Low, 1, int64(i))[0]
		hq := c.Queries(Q1, High, 1, int64(i))[0]
		lr, err := c.DB.Query(lq)
		if err != nil {
			t.Fatal(err)
		}
		hr, err := c.DB.Query(hq)
		if err != nil {
			t.Fatal(err)
		}
		lowN += len(lr.Rows)
		highN += len(hr.Rows)
	}
	if highN <= lowN {
		t.Errorf("selectivity classes inverted: low=%d high=%d", lowN, highN)
	}
}

func TestStudentPerfQueryRuns(t *testing.T) {
	c := testCampus(t)
	res, err := c.DB.Query(c.StudentPerfQuery(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	_ = res // row counts depend on the seed; parsing/execution is the point
}

func TestBuildMallShape(t *testing.T) {
	m, err := BuildMall(TestMallConfig(), engine.Postgres())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumEvents == 0 {
		t.Fatal("no mall events")
	}
	res, err := m.DB.Query("SELECT count(*) FROM " + TableShop)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != int64(m.Cfg.Shops) {
		t.Fatalf("shops = %v", res.Rows[0][0])
	}
	ps := m.GeneratePolicies(5, 6)
	if len(ps) == 0 {
		t.Fatal("no mall policies")
	}
	shopQueriers := 0
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Fatalf("invalid mall policy: %v", err)
		}
		if strings.HasPrefix(p.Querier, "shop:") {
			shopQueriers++
		}
	}
	if shopQueriers != len(ps) {
		t.Errorf("non-shop queriers: %d of %d", len(ps)-shopQueriers, len(ps))
	}
	if _, err := m.DB.Query(m.SelectAllQuery()); err != nil {
		t.Fatal(err)
	}
}

func TestMallTopQueriersHaveManyPolicies(t *testing.T) {
	m, err := BuildMall(TestMallConfig(), engine.MySQL())
	if err != nil {
		t.Fatal(err)
	}
	ps := m.GeneratePolicies(5, 8)
	top := TopQueriers(ps, 5, 10)
	if len(top) < 3 {
		t.Fatalf("too few heavy shop queriers: %v", top)
	}
}
