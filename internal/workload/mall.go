package workload

import (
	"fmt"
	"math/rand"

	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/policy"
	"github.com/sieve-db/sieve/internal/sqlparser"
	"github.com/sieve-db/sieve/internal/storage"
)

// MallConfig scales the Mall dataset (§7.1, Table 3): the paper generates
// 1.7M events for 2,651 customers over 35 shops of six types, with 19,364
// policies (551 per shop querier on average).
type MallConfig struct {
	Seed      int64
	Customers int // paper: 2,651
	Shops     int // paper: 35
	Days      int
	// VisitsPerCustomerDay is the mean connectivity events per active
	// customer day.
	VisitsPerCustomerDay int
}

// TestMallConfig is sized for unit tests.
func TestMallConfig() MallConfig {
	return MallConfig{Seed: 3, Customers: 300, Shops: 12, Days: 14, VisitsPerCustomerDay: 3}
}

// BenchMallConfig approximates the paper's corpus at reduced scale.
func BenchMallConfig() MallConfig {
	return MallConfig{Seed: 3, Customers: 2651, Shops: 35, Days: 60, VisitsPerCustomerDay: 5}
}

// ShopTypes are the six §7.1 categories.
var ShopTypes = []string{"arcade", "movies", "food", "clothing", "electronics", "grocery"}

// Mall relation names (Table 3).
const (
	TableMallUsers = "Mall_Users"
	TableShop      = "Shop"
	TableMallWiFi  = "WiFi_Connectivity"
)

// Customer is one mall visitor.
type Customer struct {
	ID       int64
	Regular  bool
	TopShop  int64  // most-visited shop
	Interest string // preferred shop type
}

// Mall is the generated mall database.
type Mall struct {
	Cfg       MallConfig
	DB        *engine.DB
	Customers []Customer
	NumEvents int
}

// ShopQuerier is the querier identity of a shop.
func ShopQuerier(shop int64) string { return fmt.Sprintf("shop:%d", shop) }

// BuildMall generates the dataset into a fresh database.
func BuildMall(cfg MallConfig, dialect engine.Dialect) (*Mall, error) {
	db := engine.New(dialect)
	m := &Mall{Cfg: cfg, DB: db}
	r := rand.New(rand.NewSource(cfg.Seed))

	users := storage.MustSchema(
		storage.Column{Name: "id", Type: storage.KindInt},
		storage.Column{Name: "device", Type: storage.KindString},
		storage.Column{Name: "interest", Type: storage.KindString},
	)
	shops := storage.MustSchema(
		storage.Column{Name: "id", Type: storage.KindInt},
		storage.Column{Name: "name", Type: storage.KindString},
		storage.Column{Name: "type", Type: storage.KindString},
	)
	wifi := storage.MustSchema(
		storage.Column{Name: "id", Type: storage.KindInt},
		storage.Column{Name: "shop_id", Type: storage.KindInt},
		storage.Column{Name: "owner", Type: storage.KindInt},
		storage.Column{Name: "obs_time", Type: storage.KindTime},
		storage.Column{Name: "obs_date", Type: storage.KindDate},
	)
	for _, t := range []struct {
		name   string
		schema *storage.Schema
	}{{TableMallUsers, users}, {TableShop, shops}, {TableMallWiFi, wifi}} {
		if _, err := db.CreateTable(t.name, t.schema); err != nil {
			return nil, err
		}
	}

	var srows []storage.Row
	for s := 0; s < cfg.Shops; s++ {
		srows = append(srows, storage.Row{
			storage.NewInt(int64(s)),
			storage.NewString(fmt.Sprintf("shop-%02d", s)),
			storage.NewString(ShopTypes[s%len(ShopTypes)]),
		})
	}
	if err := db.BulkInsert(TableShop, srows); err != nil {
		return nil, err
	}

	m.Customers = make([]Customer, cfg.Customers)
	var urows []storage.Row
	for i := range m.Customers {
		cust := Customer{
			ID:       int64(i),
			Regular:  r.Float64() < 0.4,
			TopShop:  int64(r.Intn(cfg.Shops)),
			Interest: ShopTypes[r.Intn(len(ShopTypes))],
		}
		m.Customers[i] = cust
		urows = append(urows, storage.Row{
			storage.NewInt(cust.ID),
			storage.NewString(fmt.Sprintf("cust-%05d", cust.ID)),
			storage.NewString(cust.Interest),
		})
	}
	if err := db.BulkInsert(TableMallUsers, urows); err != nil {
		return nil, err
	}

	var rows []storage.Row
	id := int64(0)
	for _, cust := range m.Customers {
		activeProb := 0.6
		if !cust.Regular {
			activeProb = 0.15
		}
		for d := 0; d < cfg.Days; d++ {
			if r.Float64() > activeProb {
				continue
			}
			n := 1 + r.Intn(cfg.VisitsPerCustomerDay)
			for v := 0; v < n; v++ {
				shop := cust.TopShop
				if !cust.Regular || r.Float64() < 0.5 {
					shop = int64(r.Intn(cfg.Shops))
				}
				h := 10 + (r.Intn(12)+r.Intn(12))/2 // 10:00–21:59
				secs := int64(h)*3600 + int64(r.Intn(3600))
				if secs >= 24*3600 {
					secs = 24*3600 - 1
				}
				rows = append(rows, storage.Row{
					storage.NewInt(id), storage.NewInt(shop), storage.NewInt(cust.ID),
					storage.NewTime(secs), storage.NewDate(int64(d)),
				})
				id++
			}
		}
	}
	m.NumEvents = len(rows)
	if err := db.BulkInsert(TableMallWiFi, rows); err != nil {
		return nil, err
	}
	for _, col := range []string{"owner", "shop_id", "obs_time", "obs_date"} {
		if err := db.CreateIndex(TableMallWiFi, col); err != nil {
			return nil, err
		}
	}
	if err := db.Analyze(TableMallWiFi); err != nil {
		return nil, err
	}
	return m, nil
}

// GeneratePolicies builds the mall corpus (§7.1): regular customers allow
// their top shop during open hours; irregular customers allow shop types
// during sale windows; interested customers allow shops of their category
// for short periods (lightning sales). Queriers are shops.
func (m *Mall) GeneratePolicies(seed int64, perCustomer int) []*policy.Policy {
	r := rand.New(rand.NewSource(seed))
	openHours := policy.RangeClosed("obs_time", storage.MustTime("10:00"), storage.MustTime("22:00"))
	shopsOfType := make(map[string][]int64)
	for s := 0; s < m.Cfg.Shops; s++ {
		ty := ShopTypes[s%len(ShopTypes)]
		shopsOfType[ty] = append(shopsOfType[ty], int64(s))
	}
	var out []*policy.Policy
	for _, cust := range m.Customers {
		n := 1 + r.Intn(perCustomer)
		for i := 0; i < n; i++ {
			p := &policy.Policy{
				Owner: cust.ID, Purpose: "marketing", Relation: TableMallWiFi, Action: policy.Allow,
			}
			switch {
			case cust.Regular && i == 0:
				p.Querier = ShopQuerier(cust.TopShop)
				p.Conditions = []policy.ObjectCondition{openHours}
			case !cust.Regular:
				// Sale-window grant to a shop of some type.
				shops := shopsOfType[ShopTypes[r.Intn(len(ShopTypes))]]
				p.Querier = ShopQuerier(shops[r.Intn(len(shops))])
				start := r.Intn(m.Cfg.Days)
				p.Conditions = []policy.ObjectCondition{
					policy.RangeClosed("obs_date",
						storage.NewDate(int64(start)),
						storage.NewDate(int64(start+1+r.Intn(5)))),
				}
			default:
				// Lightning sale: interest-category shop, short time window.
				shops := shopsOfType[cust.Interest]
				p.Querier = ShopQuerier(shops[r.Intn(len(shops))])
				h := 10 + r.Intn(10)
				p.Conditions = []policy.ObjectCondition{
					policy.RangeClosed("obs_time",
						storage.NewTime(int64(h)*3600),
						storage.NewTime(int64(h+1)*3600)),
					policy.Compare("shop_id", sqlparser.CmpEq, storage.NewInt(cust.TopShop)),
				}
			}
			out = append(out, p)
		}
	}
	return out
}

// SelectAllQuery is the Experiment 4/5 SELECT-ALL workload over the mall
// connectivity relation.
func (m *Mall) SelectAllQuery() string {
	return "SELECT * FROM " + TableMallWiFi
}

// CorpusQueries is the mall examples corpus used by the traffic harness:
// the SELECT * shapes its invariant checker can justify row by row, plus
// the aggregations a shop's analyst would run.
func (m *Mall) CorpusQueries() []NamedQuery {
	half := storage.FormatDate(storage.NewDate(int64(m.Cfg.Days / 2)))
	end := storage.FormatDate(storage.NewDate(int64(m.Cfg.Days)))
	return []NamedQuery{
		{Name: "select_all", SQL: m.SelectAllQuery()},
		{Name: "evening_footfall", SQL: "SELECT * FROM " + TableMallWiFi +
			" AS W WHERE W.obs_time BETWEEN TIME '17:00' AND TIME '21:00'"},
		{Name: "recent_visits", SQL: fmt.Sprintf(
			"SELECT * FROM %s AS W WHERE W.obs_date BETWEEN DATE '%s' AND DATE '%s'",
			TableMallWiFi, half, end)},
		{Name: "shop_window", SQL: "SELECT * FROM " + TableMallWiFi +
			" AS W WHERE W.shop_id IN (0, 1, 2)"},
		{Name: "shop_census", SQL: "SELECT W.shop_id, count(*) AS visits FROM " + TableMallWiFi +
			" AS W GROUP BY W.shop_id ORDER BY visits DESC LIMIT 5"},
		{Name: "daily_volume", SQL: "SELECT count(*) FROM " + TableMallWiFi +
			" AS W WHERE W.obs_time BETWEEN TIME '10:00' AND TIME '14:00'"},
	}
}
