package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/sieve-db/sieve/internal/storage"
)

// SelectivityClass is the query cardinality class of §7.2 Experiment 3.
type SelectivityClass string

// The three classes.
const (
	Low  SelectivityClass = "low"
	Mid  SelectivityClass = "mid"
	High SelectivityClass = "high"
)

// SelectivityClasses in presentation order.
var SelectivityClasses = []SelectivityClass{Low, Mid, High}

// QueryTemplate identifies one of the §7.1 SmartBench-derived templates.
type QueryTemplate string

// The three templates: Q1 location sweep, Q2 device sweep, Q3 group join.
const (
	Q1 QueryTemplate = "Q1"
	Q2 QueryTemplate = "Q2"
	Q3 QueryTemplate = "Q3"
)

// QueryTemplates in presentation order.
var QueryTemplates = []QueryTemplate{Q1, Q2, Q3}

// classParams maps a selectivity class to the fraction of the domain each
// dimension spans.
type classParams struct {
	aps     int     // Q1: locations listed
	devices int     // Q2: devices listed
	hours   int     // time window length
	dayFrac float64 // fraction of the date range
}

func paramsFor(class SelectivityClass, cfg CampusConfig) classParams {
	switch class {
	case Low:
		return classParams{aps: 1, devices: 2, hours: 1, dayFrac: 0.1}
	case Mid:
		return classParams{aps: maxi(1, cfg.APs/8), devices: 8, hours: 4, dayFrac: 0.4}
	default: // High
		return classParams{aps: maxi(1, cfg.APs/2), devices: 32, hours: 10, dayFrac: 1.0}
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Query generates one SQL query of the given template and class.
func (c *Campus) Query(tmpl QueryTemplate, class SelectivityClass, r *rand.Rand) string {
	p := paramsFor(class, c.Cfg)
	startHour := 8 + r.Intn(maxi(1, 12-p.hours))
	t1 := fmt.Sprintf("TIME '%02d:00'", startHour)
	t2 := fmt.Sprintf("TIME '%02d:00'", startHour+p.hours)
	days := int(float64(c.Cfg.Days) * p.dayFrac)
	if days < 1 {
		days = 1
	}
	d1 := r.Intn(maxi(1, c.Cfg.Days-days))
	dateLo := storage.FormatDate(storage.NewDate(int64(d1)))
	dateHi := storage.FormatDate(storage.NewDate(int64(d1 + days)))

	switch tmpl {
	case Q1:
		aps := make([]string, p.aps)
		base := r.Intn(maxi(1, c.Cfg.APs-p.aps))
		for i := range aps {
			aps[i] = fmt.Sprintf("%d", base+i)
		}
		return fmt.Sprintf(
			"SELECT * FROM %s AS W WHERE W.wifiAP IN (%s) AND W.ts_time BETWEEN %s AND %s AND W.ts_date BETWEEN DATE '%s' AND DATE '%s'",
			TableWiFi, strings.Join(aps, ", "), t1, t2, dateLo, dateHi)
	case Q2:
		devs := make([]string, p.devices)
		for i := range devs {
			devs[i] = fmt.Sprintf("%d", r.Intn(c.Cfg.Devices))
		}
		return fmt.Sprintf(
			"SELECT * FROM %s AS W WHERE W.owner IN (%s) AND W.ts_time BETWEEN %s AND %s AND W.ts_date BETWEEN DATE '%s' AND DATE '%s'",
			TableWiFi, strings.Join(devs, ", "), t1, t2, dateLo, dateHi)
	default: // Q3
		gid := r.Intn(c.Cfg.GroupCount)
		return fmt.Sprintf(
			"SELECT W.id, W.owner FROM %s AS W, %s AS UG WHERE UG.user_group_id = %d AND UG.user_id = W.owner AND W.ts_time BETWEEN %s AND %s AND W.ts_date BETWEEN DATE '%s' AND DATE '%s'",
			TableWiFi, TableMembership, gid, t1, t2, dateLo, dateHi)
	}
}

// Queries generates n deterministic queries for a template and class.
func (c *Campus) Queries(tmpl QueryTemplate, class SelectivityClass, n int, seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		out[i] = c.Query(tmpl, class, r)
	}
	return out
}

// NamedQuery is one entry of the examples corpus: a label plus the SQL
// text.
type NamedQuery struct {
	Name string
	SQL  string
}

// CorpusQueries is the examples corpus: a deterministic set of queries
// covering every statement shape SIEVE rewrites — the three SmartBench
// templates across selectivity classes, the §2.1 analytical join,
// aggregation, projection, set operations, and LIMIT/OFFSET paging. The
// end-to-end emission tests and sieve-rewrite's -corpus mode both walk
// this list, so every shape is proven to emit for every backend dialect.
func (c *Campus) CorpusQueries() []NamedQuery {
	var out []NamedQuery
	for _, tmpl := range QueryTemplates {
		for _, class := range SelectivityClasses {
			out = append(out, NamedQuery{
				Name: fmt.Sprintf("%s_%s", tmpl, class),
				SQL:  c.Queries(tmpl, class, 1, 1)[0],
			})
		}
	}
	out = append(out,
		NamedQuery{Name: "student_perf", SQL: c.StudentPerfQuery(0, 1200)},
		NamedQuery{Name: "count_star", SQL: "SELECT count(*) FROM " + TableWiFi},
		NamedQuery{Name: "projection", SQL: "SELECT id, owner, wifiAP FROM " + TableWiFi + " WHERE wifiAP = 1200"},
		NamedQuery{
			Name: "group_by_ap",
			SQL: "SELECT W.wifiAP, count(*) AS visits FROM " + TableWiFi +
				" AS W GROUP BY W.wifiAP ORDER BY visits DESC LIMIT 5",
		},
		NamedQuery{
			Name: "paging",
			SQL:  "SELECT id, owner FROM " + TableWiFi + " ORDER BY id LIMIT 20 OFFSET 40",
		},
		NamedQuery{
			Name: "union_minus",
			SQL: "SELECT owner FROM " + TableWiFi + " WHERE wifiAP = 1200 " +
				"UNION SELECT owner FROM " + TableWiFi + " WHERE wifiAP = 1201 " +
				"MINUS SELECT owner FROM " + TableWiFi + " WHERE ts_time < TIME '08:00'",
		},
		NamedQuery{
			Name: "in_subquery",
			SQL: "SELECT * FROM " + TableWiFi + " AS W WHERE W.owner IN " +
				"(SELECT M.user_id FROM " + TableMembership + " AS M WHERE M.user_group_id = 1) LIMIT 10",
		},
	)
	return out
}

// StudentPerfQuery is the §2.1 motivating analytical query: attendance of
// the members of one group at one AP during class hours, joined back per
// student — adapted to the generated schema.
func (c *Campus) StudentPerfQuery(gid int, ap int64) string {
	return fmt.Sprintf(`SELECT T.student, count(*) AS sessions FROM (
SELECT W.owner AS student, W.ts_date AS day FROM %s AS W, %s AS E
WHERE E.user_group_id = %d AND E.user_id = W.owner
  AND W.ts_time BETWEEN TIME '09:00' AND TIME '10:00' AND W.wifiAP = %d
GROUP BY W.owner, W.ts_date) AS T GROUP BY T.student ORDER BY T.student`,
		TableWiFi, TableMembership, gid, ap)
}
