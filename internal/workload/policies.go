package workload

import (
	"math/rand"

	"github.com/sieve-db/sieve/internal/policy"
	"github.com/sieve-db/sieve/internal/sqlparser"
	"github.com/sieve-db/sieve/internal/storage"
)

// PolicyConfig scales the synthetic campus policy corpus (§7.1): the paper
// generates 869,470 policies, 472 per owner on average, 188 per querier on
// average, from a profile-based recipe.
type PolicyConfig struct {
	Seed int64
	// AdvancedPolicies is the mean number of policies an advanced user
	// defines (paper: ~40).
	AdvancedPolicies int
	// PopularQueriers is the size of the heavily-targeted querier pool
	// (lecturers in the §2.1 classroom scenario); policies pick their
	// querier from this pool with PopularBias probability, giving the
	// querier-side counts Experiments 1 and 4 sweep over.
	PopularQueriers int
	PopularBias     float64
}

// TestPolicyConfig is sized for unit tests.
func TestPolicyConfig() PolicyConfig {
	return PolicyConfig{Seed: 2, AdvancedPolicies: 8, PopularQueriers: 6, PopularBias: 0.5}
}

// BenchPolicyConfig approximates the paper's per-querier load: a small pool
// of heavily-targeted queriers (the §2.1 lecturers) accumulates policy
// counts in the high hundreds, the scale-adjusted analogue of the paper's
// 3.3K–7.2K policies per analytical query.
func BenchPolicyConfig() PolicyConfig {
	return PolicyConfig{Seed: 2, AdvancedPolicies: 40, PopularQueriers: 10, PopularBias: 0.5}
}

// GeneratePolicies builds the campus policy corpus: two default policies
// per unconcerned resident (group-scoped, working hours; group∩profile,
// any time) and ~AdvancedPolicies fine-grained policies per advanced
// resident with time/AP/date conditions.
func (c *Campus) GeneratePolicies(cfg PolicyConfig) []*policy.Policy {
	r := rand.New(rand.NewSource(cfg.Seed))
	residents := c.ResidentUsers()

	// Popular queriers are sampled among faculty and staff first.
	var popular []string
	for _, u := range residents {
		if (u.Profile == Faculty || u.Profile == Staff) && len(popular) < cfg.PopularQueriers {
			popular = append(popular, u.Name())
		}
	}
	for len(popular) < cfg.PopularQueriers && len(residents) > 0 {
		popular = append(popular, residents[r.Intn(len(residents))].Name())
	}

	// Each popular querier teaches in a fixed classroom at a fixed hour —
	// the §2.1 scenario where a whole class shares "my data at AP X during
	// class time" conditions, which is exactly what guard grouping exploits.
	type classroom struct {
		ap    int64
		start int64 // class start hour
	}
	classes := make(map[string]classroom, len(popular))
	for i, q := range popular {
		classes[q] = classroom{ap: int64(i % c.Cfg.APs), start: int64(9 + i%6)}
	}

	pickQuerier := func(owner User) string {
		if len(popular) > 0 && r.Float64() < cfg.PopularBias {
			return popular[r.Intn(len(popular))]
		}
		switch r.Intn(3) {
		case 0:
			return GroupName(r.Intn(c.Cfg.GroupCount))
		case 1:
			return ProfileName(profileShares[1+r.Intn(len(profileShares)-1)].p)
		default:
			return residents[r.Intn(len(residents))].Name()
		}
	}

	var out []*policy.Policy
	workingHours := policy.RangeClosed("ts_time", storage.MustTime("08:00"), storage.MustTime("18:00"))
	for _, u := range residents {
		if !u.Advanced {
			// Default policy 1: group members during working hours.
			out = append(out, &policy.Policy{
				Owner: u.ID, Querier: GroupName(u.Group), Purpose: policy.AnyPurpose,
				Relation: TableWiFi, Action: policy.Allow,
				Conditions: []policy.ObjectCondition{workingHours},
			})
			// Default policy 2: profile peers at any time.
			out = append(out, &policy.Policy{
				Owner: u.ID, Querier: ProfileName(u.Profile), Purpose: policy.AnyPurpose,
				Relation: TableWiFi, Action: policy.Allow,
			})
			continue
		}
		n := cfg.AdvancedPolicies/2 + r.Intn(cfg.AdvancedPolicies+1)
		for i := 0; i < n; i++ {
			p := &policy.Policy{
				Owner: u.ID, Querier: pickQuerier(u),
				Purpose:  Purposes[r.Intn(len(Purposes))],
				Relation: TableWiFi, Action: policy.Allow,
			}
			// Conditions mirror the §2.1 control dimensions: location (AP),
			// time window, date window. Grants to a lecturer cluster around
			// that lecturer's classroom and class hour.
			cls, isClass := classes[p.Querier]
			if isClass && r.Float64() < 0.6 {
				p.Purpose = Purposes[0] // attendance
				p.Conditions = append(p.Conditions,
					policy.Compare("wifiAP", sqlparser.CmpEq, storage.NewInt(cls.ap)))
				if r.Float64() < 0.7 {
					jitter := int64(r.Intn(2)) // overlapping, not identical (Theorem 1)
					p.Conditions = append(p.Conditions, policy.RangeClosed("ts_time",
						storage.NewTime(cls.start*3600-jitter*600),
						storage.NewTime((cls.start+1)*3600+jitter*600)))
				}
				out = append(out, p)
				continue
			}
			if r.Float64() < 0.65 {
				ap := u.HomeAP
				if r.Float64() < 0.4 {
					ap = int64(r.Intn(c.Cfg.APs))
				}
				p.Conditions = append(p.Conditions,
					policy.Compare("wifiAP", sqlparser.CmpEq, storage.NewInt(ap)))
			}
			if r.Float64() < 0.7 {
				startHour := 8 + r.Intn(9)
				dur := 1 + r.Intn(4)
				p.Conditions = append(p.Conditions, policy.RangeClosed("ts_time",
					storage.NewTime(int64(startHour)*3600),
					storage.NewTime(int64(startHour+dur)*3600)))
			}
			if r.Float64() < 0.3 {
				start := r.Intn(c.Cfg.Days)
				end := start + 1 + r.Intn(c.Cfg.Days/2+1)
				p.Conditions = append(p.Conditions, policy.RangeClosed("ts_date",
					storage.NewDate(int64(start)), storage.NewDate(int64(end))))
			}
			out = append(out, p)
		}
	}
	return out
}

// QuerierCounts tallies policies per querier identity.
func QuerierCounts(ps []*policy.Policy) map[string]int {
	out := make(map[string]int)
	for _, p := range ps {
		out[p.Querier]++
	}
	return out
}

// TopQueriers returns up to n queriers with at least minPolicies policies,
// by descending policy count (used to pick Experiment 4/5 queriers).
func TopQueriers(ps []*policy.Policy, n, minPolicies int) []string {
	counts := QuerierCounts(ps)
	type qc struct {
		q string
		n int
	}
	var all []qc
	for q, cnt := range counts {
		if cnt >= minPolicies {
			all = append(all, qc{q, cnt})
		}
	}
	// Insertion sort by count descending, name ascending for determinism.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && (all[j].n > all[j-1].n || (all[j].n == all[j-1].n && all[j].q < all[j-1].q)); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	var out []string
	for i := 0; i < len(all) && i < n; i++ {
		out = append(out, all[i].q)
	}
	return out
}
