package workload

import (
	"fmt"
	"math/rand"

	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/policy"
	"github.com/sieve-db/sieve/internal/sqlparser"
	"github.com/sieve-db/sieve/internal/storage"
)

// TableTelemetry is the protected relation of the large-regime corpus.
const TableTelemetry = "Telemetry"

// ScaleConfig parameterises the million-policy-regime corpus: the paper's
// full TIPPERS deployment holds 869K policies over tens of thousands of
// queriers (§7.1), but those queriers cluster into a small number of
// access profiles — a class shares its lecturer's grants, a lab shares
// its PI's. The corpus models that shape directly: a large querier
// population partitioned into few access groups whose popularity follows
// a Zipf law, with every policy granted to a group identity, so group
// members share one applicable policy set (one signature) and the
// middleware's guard and plan caches can be held to O(groups) instead of
// O(queriers).
type ScaleConfig struct {
	Seed int64
	// Queriers is the number of distinct querier identities.
	Queriers int
	// Groups is the number of access groups the queriers divide into —
	// the ceiling on distinct policy profiles.
	Groups int
	// Policies is the corpus size; each policy is granted to one group.
	Policies int
	// Owners is the data-owner population the policies speak for.
	Owners int
	// ZipfS is the skew of group popularity (must be > 1; higher means
	// fewer groups hold most queriers and most policies — the §2.1
	// classroom shape).
	ZipfS float64
	// Rows is the protected relation's tuple count. The regime measures
	// rewrite-side behaviour, so this stays small.
	Rows int
	// APs bounds the location attribute used in policy conditions.
	APs int
}

// DefaultScaleConfig fills the regime's fixed dimensions; callers sweep
// Queriers and Policies.
func DefaultScaleConfig() ScaleConfig {
	return ScaleConfig{Seed: 7, Groups: 100, Owners: 500, ZipfS: 1.2, Rows: 512, APs: 32}
}

// ScaleQuerierName returns the querier identity of population member i.
func ScaleQuerierName(i int) string { return fmt.Sprintf("sq:%05d", i) }

// ScaleGroupName returns the querier identity of access group g.
func ScaleGroupName(g int) string { return fmt.Sprintf("sg:%03d", g) }

// ScaleCorpus is the generated large-regime population and policy corpus.
type ScaleCorpus struct {
	Cfg      ScaleConfig
	Policies []*policy.Policy
	// Queriers lists the population's querier identities; GroupOf[i] is
	// the access group of Queriers[i].
	Queriers []string
	GroupOf  []int
	// Profiles is the number of distinct applicable policy sets across
	// the population: groups that both hold members and received
	// policies count once each, and every member of a policy-free group
	// shares the single empty profile.
	Profiles int

	groups policy.StaticGroups
}

// Groups returns the corpus's group-membership resolver.
func (sc *ScaleCorpus) Groups() policy.Groups { return sc.groups }

// BuildScaleCorpus generates the population and its policy corpus.
// Deterministic under Cfg.Seed.
func BuildScaleCorpus(cfg ScaleConfig) *ScaleCorpus {
	if cfg.Groups < 1 {
		cfg.Groups = 1
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.2
	}
	if cfg.Owners < 1 {
		cfg.Owners = 1
	}
	if cfg.APs < 1 {
		cfg.APs = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(r, cfg.ZipfS, 1, uint64(cfg.Groups-1))

	sc := &ScaleCorpus{
		Cfg:      cfg,
		Queriers: make([]string, cfg.Queriers),
		GroupOf:  make([]int, cfg.Queriers),
		groups:   policy.StaticGroups{},
	}
	hasMember := make([]bool, cfg.Groups)
	for i := 0; i < cfg.Queriers; i++ {
		g := int(zipf.Uint64())
		sc.Queriers[i] = ScaleQuerierName(i)
		sc.GroupOf[i] = g
		sc.groups[sc.Queriers[i]] = []string{ScaleGroupName(g)}
		hasMember[g] = true
	}

	// Policies are granted to group identities with the same skew, so
	// popular groups accumulate both members and policies. Conditions
	// reuse the §2.1 control dimensions (location, time window) so the
	// generated guards are non-trivial.
	hasPolicy := make([]bool, cfg.Groups)
	sc.Policies = make([]*policy.Policy, 0, cfg.Policies)
	for i := 0; i < cfg.Policies; i++ {
		g := int(zipf.Uint64())
		hasPolicy[g] = true
		p := &policy.Policy{
			Owner:    int64(r.Intn(cfg.Owners)),
			Querier:  ScaleGroupName(g),
			Purpose:  policy.AnyPurpose,
			Relation: TableTelemetry,
			Action:   policy.Allow,
		}
		if r.Float64() < 0.6 {
			p.Conditions = append(p.Conditions,
				policy.Compare("ap", sqlparser.CmpEq, storage.NewInt(int64(r.Intn(cfg.APs)))))
		}
		if r.Float64() < 0.7 {
			start := 8 + r.Intn(9)
			p.Conditions = append(p.Conditions, policy.RangeClosed("ts_time",
				storage.NewTime(int64(start)*3600),
				storage.NewTime(int64(start+1+r.Intn(4))*3600)))
		}
		sc.Policies = append(sc.Policies, p)
	}

	empty := false
	for g := 0; g < cfg.Groups; g++ {
		switch {
		case hasMember[g] && hasPolicy[g]:
			sc.Profiles++
		case hasMember[g]:
			empty = true
		}
	}
	if empty {
		sc.Profiles++
	}
	return sc
}

// BuildScaleDB creates the regime's protected relation in a fresh engine
// of the given dialect and fills it with Cfg.Rows tuples whose owner and
// location values line up with the corpus's policy conditions.
func (sc *ScaleCorpus) BuildScaleDB(dialect engine.Dialect) (*engine.DB, error) {
	db := engine.New(dialect)
	schema := storage.MustSchema(
		storage.Column{Name: "id", Type: storage.KindInt},
		storage.Column{Name: "owner", Type: storage.KindInt},
		storage.Column{Name: "ap", Type: storage.KindInt},
		storage.Column{Name: "ts_time", Type: storage.KindTime},
	)
	if _, err := db.CreateTable(TableTelemetry, schema); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(sc.Cfg.Seed + 1))
	rows := make([]storage.Row, sc.Cfg.Rows)
	for i := range rows {
		rows[i] = storage.Row{
			storage.NewInt(int64(i)),
			storage.NewInt(int64(r.Intn(sc.Cfg.Owners))),
			storage.NewInt(int64(r.Intn(sc.Cfg.APs))),
			storage.NewTime(int64(6+r.Intn(16))*3600 + int64(r.Intn(3600))),
		}
	}
	if err := db.BulkInsert(TableTelemetry, rows); err != nil {
		return nil, err
	}
	for _, col := range []string{"owner", "ap", "ts_time"} {
		if err := db.CreateIndex(TableTelemetry, col); err != nil {
			return nil, err
		}
	}
	if err := db.Analyze(TableTelemetry); err != nil {
		return nil, err
	}
	return db, nil
}

// GroupCounts tallies queriers per access group, descending — the Zipf
// head is visible in the first few entries.
func (sc *ScaleCorpus) GroupCounts() []int {
	counts := make([]int, sc.Cfg.Groups)
	for _, g := range sc.GroupOf {
		counts[g]++
	}
	// Insertion sort descending (group counts are few).
	for i := 1; i < len(counts); i++ {
		for j := i; j > 0 && counts[j] > counts[j-1]; j-- {
			counts[j], counts[j-1] = counts[j-1], counts[j]
		}
	}
	return counts
}
