package workload

import (
	"github.com/sieve-db/sieve/internal/core"
	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/policy"
)

// Demo bundles the scaffolding the demonstration tools (sieve-explain,
// sieve-rewrite) share: a generated campus, its policy corpus, and a
// middleware protecting the WiFi relation.
type Demo struct {
	Campus   *Campus
	Policies []*policy.Policy
	M        *core.Middleware
}

// NewDemo builds the test-sized campus on the given engine dialect, loads
// the generated policy corpus, and protects the WiFi relation.
func NewDemo(d engine.Dialect) (*Demo, error) {
	campus, err := BuildCampus(TestCampusConfig(), d)
	if err != nil {
		return nil, err
	}
	policies := campus.GeneratePolicies(TestPolicyConfig())
	store, err := policy.NewStore(campus.DB)
	if err != nil {
		return nil, err
	}
	if err := store.BulkLoad(policies); err != nil {
		return nil, err
	}
	m, err := core.New(store, core.WithGroups(campus.Groups()))
	if err != nil {
		return nil, err
	}
	if err := m.Protect(TableWiFi); err != nil {
		return nil, err
	}
	return &Demo{Campus: campus, Policies: policies, M: m}, nil
}

// Querier resolves the tool's -querier flag: "auto" picks the busiest
// policy-holding querier.
func (d *Demo) Querier(flagValue string) string {
	if flagValue == "auto" {
		return TopQueriers(d.Policies, 1, 1)[0]
	}
	return flagValue
}
