// Package workload generates the evaluation datasets, policy corpora, and
// query workloads of §7.1: the TIPPERS-like smart-campus WiFi dataset
// (Table 2's schema, profile-classified devices, affinity groups) and the
// Mall dataset (Table 3), plus the Q1/Q2/Q3 query templates at three
// selectivity classes. All generation is deterministic under a seed, and a
// scale factor shrinks the corpora so experiments run on a laptop while
// preserving the distributions guards depend on (owner skew, AP locality,
// office-hour time windows).
package workload

import (
	"fmt"
	"math/rand"

	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/policy"
	"github.com/sieve-db/sieve/internal/storage"
)

// Profile classifies a campus device owner (§7.1: classification by time
// spent and room affinity).
type Profile string

// Profiles, with the paper's population counts for 36,436 devices:
// 31,796 visitors, 1,029 staff, 388 faculty, 1,795 undergrad, 1,428 grad.
const (
	Visitor   Profile = "visitor"
	Staff     Profile = "staff"
	Faculty   Profile = "faculty"
	Undergrad Profile = "undergrad"
	Grad      Profile = "grad"
)

// profileShares are the paper's population fractions.
var profileShares = []struct {
	p     Profile
	share float64
}{
	{Visitor, 31796.0 / 36436},
	{Staff, 1029.0 / 36436},
	{Faculty, 388.0 / 36436},
	{Undergrad, 1795.0 / 36436},
	{Grad, 1428.0 / 36436},
}

// Purposes used by generated policies and queries.
var Purposes = []string{"attendance", "analytics", "social", "safety", "commercial", "convenience"}

// CampusConfig scales the TIPPERS-like dataset.
type CampusConfig struct {
	Seed    int64
	Devices int // paper: 36,436
	APs     int // paper: 64
	Days    int // paper: ~90
	// EventsPerResidentDay is the mean connectivity events per non-visitor
	// device per active day. The paper's 3.9M events over 90 days imply
	// ~10–20 events per resident day once visitors are discounted.
	EventsPerResidentDay int
	// GroupCount is the number of affinity groups (paper: 56, avg 108
	// devices each).
	GroupCount int
}

// TestCampusConfig is small enough for unit tests (<50k events).
func TestCampusConfig() CampusConfig {
	return CampusConfig{Seed: 1, Devices: 400, APs: 16, Days: 14, EventsPerResidentDay: 6, GroupCount: 8}
}

// BenchCampusConfig is the experiment scale: roughly 1/8 of the paper's
// corpus, preserving its proportions.
func BenchCampusConfig() CampusConfig {
	return CampusConfig{Seed: 1, Devices: 4500, APs: 64, Days: 90, EventsPerResidentDay: 8, GroupCount: 56}
}

// User is one campus device owner.
type User struct {
	ID       int64
	Profile  Profile
	Group    int // affinity group
	Advanced bool
	// HomeAP is the AP the device connects to most (room affinity).
	HomeAP int64
}

// Name returns the user's querier identity.
func (u User) Name() string { return fmt.Sprintf("u:%d", u.ID) }

// GroupName returns the querier identity of an affinity group.
func GroupName(g int) string { return fmt.Sprintf("group:%d", g) }

// ProfileName returns the querier identity of a profile group.
func ProfileName(p Profile) string { return "profile:" + string(p) }

// Campus is the generated smart-campus database.
type Campus struct {
	Cfg       CampusConfig
	DB        *engine.DB
	Users     []User
	NumEvents int
	groups    policy.StaticGroups
}

// Relation names (Table 2).
const (
	TableUsers      = "Users"
	TableGroups     = "User_Groups"
	TableMembership = "User_Group_Membership"
	TableLocation   = "Location"
	TableWiFi       = "WiFi_Dataset"
)

// BuildCampus generates the dataset into a fresh database of the given
// dialect, indexes the WiFi relation's query/guard attributes, and runs
// ANALYZE.
func BuildCampus(cfg CampusConfig, dialect engine.Dialect) (*Campus, error) {
	db := engine.New(dialect)
	c := &Campus{Cfg: cfg, DB: db, groups: policy.StaticGroups{}}
	r := rand.New(rand.NewSource(cfg.Seed))

	if err := c.createTables(); err != nil {
		return nil, err
	}
	c.generateUsers(r)
	if err := c.loadUsers(); err != nil {
		return nil, err
	}
	if err := c.generateEvents(r); err != nil {
		return nil, err
	}
	for _, col := range []string{"owner", "wifiAP", "ts_time", "ts_date"} {
		if err := db.CreateIndex(TableWiFi, col); err != nil {
			return nil, err
		}
	}
	if err := db.CreateIndex(TableMembership, "user_id"); err != nil {
		return nil, err
	}
	if err := db.CreateIndex(TableMembership, "user_group_id"); err != nil {
		return nil, err
	}
	if err := db.Analyze(TableWiFi); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Campus) createTables() error {
	tables := []struct {
		name   string
		schema *storage.Schema
	}{
		{TableUsers, storage.MustSchema(
			storage.Column{Name: "id", Type: storage.KindInt},
			storage.Column{Name: "device", Type: storage.KindString},
			storage.Column{Name: "office", Type: storage.KindInt},
		)},
		{TableGroups, storage.MustSchema(
			storage.Column{Name: "id", Type: storage.KindInt},
			storage.Column{Name: "name", Type: storage.KindString},
			storage.Column{Name: "owner", Type: storage.KindString},
		)},
		{TableMembership, storage.MustSchema(
			storage.Column{Name: "user_group_id", Type: storage.KindInt},
			storage.Column{Name: "user_id", Type: storage.KindInt},
		)},
		{TableLocation, storage.MustSchema(
			storage.Column{Name: "id", Type: storage.KindInt},
			storage.Column{Name: "name", Type: storage.KindString},
			storage.Column{Name: "type", Type: storage.KindString},
		)},
		{TableWiFi, storage.MustSchema(
			storage.Column{Name: "id", Type: storage.KindInt},
			storage.Column{Name: "wifiAP", Type: storage.KindInt},
			storage.Column{Name: "owner", Type: storage.KindInt},
			storage.Column{Name: "ts_time", Type: storage.KindTime},
			storage.Column{Name: "ts_date", Type: storage.KindDate},
		)},
	}
	for _, t := range tables {
		if _, err := c.DB.CreateTable(t.name, t.schema); err != nil {
			return err
		}
	}
	return nil
}

func (c *Campus) generateUsers(r *rand.Rand) {
	c.Users = make([]User, c.Cfg.Devices)
	for i := range c.Users {
		u := User{ID: int64(i)}
		// Profile by cumulative share.
		x := r.Float64()
		acc := 0.0
		for _, ps := range profileShares {
			acc += ps.share
			if x < acc {
				u.Profile = ps.p
				break
			}
		}
		if u.Profile == "" {
			u.Profile = Visitor
		}
		u.Group = r.Intn(c.Cfg.GroupCount)
		u.HomeAP = int64(r.Intn(c.Cfg.APs))
		// §2.1 privacy-profile split: 20% unconcerned + 2/3 of the 62%
		// situational behave as unconcerned (≈61%); the rest are advanced.
		u.Advanced = r.Float64() < 0.39
		c.Users[i] = u
		c.groups[u.Name()] = []string{GroupName(u.Group), ProfileName(u.Profile)}
	}
}

func (c *Campus) loadUsers() error {
	var urows, grows, mrows, lrows []storage.Row
	for _, u := range c.Users {
		urows = append(urows, storage.Row{
			storage.NewInt(u.ID),
			storage.NewString(fmt.Sprintf("device-%04d", u.ID)),
			storage.NewInt(u.HomeAP),
		})
		mrows = append(mrows, storage.Row{storage.NewInt(int64(u.Group)), storage.NewInt(u.ID)})
	}
	for g := 0; g < c.Cfg.GroupCount; g++ {
		grows = append(grows, storage.Row{
			storage.NewInt(int64(g)), storage.NewString(GroupName(g)), storage.NewString("admin"),
		})
	}
	roomTypes := []string{"classroom", "lab", "office", "lounge"}
	for ap := 0; ap < c.Cfg.APs; ap++ {
		lrows = append(lrows, storage.Row{
			storage.NewInt(int64(ap)),
			storage.NewString(fmt.Sprintf("room-%d", 1100+ap)),
			storage.NewString(roomTypes[ap%len(roomTypes)]),
		})
	}
	for _, load := range []struct {
		t    string
		rows []storage.Row
	}{
		{TableUsers, urows}, {TableGroups, grows}, {TableMembership, mrows}, {TableLocation, lrows},
	} {
		if err := c.DB.BulkInsert(load.t, load.rows); err != nil {
			return err
		}
	}
	return nil
}

// generateEvents produces diurnal connectivity: residents connect on most
// weekdays around office hours near their home AP; visitors appear on <5%
// of days.
func (c *Campus) generateEvents(r *rand.Rand) error {
	var rows []storage.Row
	id := int64(0)
	for _, u := range c.Users {
		activeProb := 0.75
		perDay := c.Cfg.EventsPerResidentDay
		if u.Profile == Visitor {
			activeProb = 0.04
			perDay = 2
		}
		for d := 0; d < c.Cfg.Days; d++ {
			if r.Float64() > activeProb {
				continue
			}
			n := 1 + r.Intn(perDay)
			for e := 0; e < n; e++ {
				ap := u.HomeAP
				if r.Float64() < 0.3 { // roaming
					ap = int64(r.Intn(c.Cfg.APs))
				}
				// Office-hour-centred times: 8am–8pm, peaked mid-day
				// (triangular distribution).
				h := 8 + (r.Intn(12)+r.Intn(12))/2
				secs := int64(h)*3600 + int64(r.Intn(3600))
				if secs >= 24*3600 {
					secs = 24*3600 - 1
				}
				rows = append(rows, storage.Row{
					storage.NewInt(id), storage.NewInt(ap), storage.NewInt(u.ID),
					storage.NewTime(secs), storage.NewDate(int64(d)),
				})
				id++
			}
		}
	}
	c.NumEvents = len(rows)
	return c.DB.BulkInsert(TableWiFi, rows)
}

// Groups returns the campus's group-membership resolver (affinity group
// plus profile group per user).
func (c *Campus) Groups() policy.Groups { return c.groups }

// ResidentUsers returns the non-visitor users.
func (c *Campus) ResidentUsers() []User {
	var out []User
	for _, u := range c.Users {
		if u.Profile != Visitor {
			out = append(out, u)
		}
	}
	return out
}

// UserByName resolves a "u:<id>" querier identity back to its user.
func (c *Campus) UserByName(name string) (User, bool) {
	var id int64
	if _, err := fmt.Sscanf(name, "u:%d", &id); err != nil {
		return User{}, false
	}
	if id < 0 || id >= int64(len(c.Users)) {
		return User{}, false
	}
	return c.Users[id], true
}
