package workload

import (
	"math/rand"

	"github.com/sieve-db/sieve/internal/core"
	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/policy"
	"github.com/sieve-db/sieve/internal/wal"
)

// DurableDemo is Demo plus a durability subsystem: mutations are
// write-ahead logged into a data directory and a restart recovers them.
// cmd/sieve-server builds one when -data-dir is set.
type DurableDemo struct {
	Demo
	Manager *wal.Manager
	// Recovered is nil on a fresh boot and carries replay statistics
	// after a restart.
	Recovered *wal.Recovered
}

// GuardSkipTables lists the middleware's derived guard-cache relations.
// They are excluded from logging and snapshots: the guard cache is
// regenerated lazily from policies, exactly as on a cold start.
func GuardSkipTables() []string {
	return []string{core.TableGE, core.TableGG, core.TableGP}
}

// NewDurableDemo opens (or creates) the durable demo under dir. A fresh
// directory seeds the test campus and snapshots it; an existing one is
// recovered — snapshot restore plus WAL replay — and serves exactly the
// acknowledged pre-crash state.
func NewDurableDemo(d engine.Dialect, dir string, opts wal.Options) (*DurableDemo, error) {
	opts.SkipTables = append(opts.SkipTables, GuardSkipTables()...)
	m, err := wal.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	has, err := m.HasState()
	if err != nil {
		return nil, err
	}
	if !has {
		demo, err := NewDemo(d)
		if err != nil {
			return nil, err
		}
		if err := m.Start(demo.Campus.DB, demo.M.ProtectedRelations); err != nil {
			return nil, err
		}
		attachHooks(m, demo.M)
		return &DurableDemo{Demo: *demo, Manager: m}, nil
	}

	db := engine.New(d)
	rec, err := m.Recover(db)
	if err != nil {
		return nil, err
	}
	campus := RehydrateCampus(TestCampusConfig(), db)
	mw, err := core.New(rec.Store, core.WithGroups(campus.Groups()))
	if err != nil {
		return nil, err
	}
	// Re-protect before the WAL starts: these Protects re-establish the
	// recovered perimeter, they are not new decisions to re-log.
	for _, rel := range rec.Protected {
		if err := mw.Protect(rel); err != nil {
			return nil, err
		}
	}
	if err := m.Start(db, mw.ProtectedRelations); err != nil {
		return nil, err
	}
	attachHooks(m, mw)
	demo := Demo{Campus: campus, Policies: rec.Store.All(), M: mw}
	return &DurableDemo{Demo: demo, Manager: m, Recovered: rec}, nil
}

// attachHooks wires the WAL into all three mutation surfaces. Only after
// this point do mutations log; everything before (seed load or recovery
// replay plus re-protection) is already covered by snapshot + log.
func attachHooks(m *wal.Manager, mw *core.Middleware) {
	mw.DB().SetWAL(m)
	mw.Store().SetDurability(m)
	mw.SetDurability(m)
}

// RehydrateCampus rebuilds the Campus scaffolding around a recovered
// database. Heaps and indexes come from the durable store; the user
// roster and group memberships — in-memory generation artifacts — are
// regenerated deterministically from the config seed. generateUsers is
// the first consumer of the seeded stream, so the roster equals the one
// the original boot produced.
func RehydrateCampus(cfg CampusConfig, db *engine.DB) *Campus {
	c := &Campus{Cfg: cfg, DB: db, groups: policy.StaticGroups{}}
	c.generateUsers(rand.New(rand.NewSource(cfg.Seed)))
	if t, ok := db.Table(TableWiFi); ok {
		c.NumEvents = t.NumRows()
	}
	return c
}
