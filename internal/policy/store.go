package policy

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/sqlparser"
	"github.com/sieve-db/sieve/internal/storage"
)

// Table names for policy persistence (§5.1).
const (
	TableP  = "sieve_policies"          // rP
	TableOC = "sieve_object_conditions" // rOC
)

// storeShards fixes the shard fan-out of the in-memory policy indexes. A
// power of two so the hash folds with a mask; 64 keeps per-shard maps tiny
// even at 10⁶ policies while bounding the struct's fixed footprint.
const storeShards = 64

// querierShard holds one shard of the querier index: querier name →
// relation → that querier's policies. The per-relation sub-index keeps
// PoliciesFor proportional to the policies that can actually apply, not to
// everything a busy group owns across relations.
type querierShard struct {
	mu        sync.RWMutex
	byQuerier map[string]map[string][]*Policy
}

// idShard holds one shard of the id index.
type idShard struct {
	mu   sync.RWMutex
	byID map[int64]*Policy
}

// Store persists policies in the engine's rP and rOC relations and keeps an
// in-memory cache for the hot lookup paths (the Δ operator and P_QM
// filtering). The cache and the relations are maintained together; loading
// an existing database reconstructs the cache from the relations.
//
// The cache is sharded: queriers and ids hash onto independent
// RWMutex-guarded shards, so concurrent PoliciesFor reads for different
// principals never contend with each other — and contend with churn only
// when the churn touches their own shard. This is what lets a large querier
// population resolve policy signatures in parallel while policies are being
// inserted and revoked.
type Store struct {
	db *engine.DB

	queriers [storeShards]querierShard
	ids      [storeShards]idShard

	// meta guards the id/clock generators only.
	meta   sync.Mutex
	nextID int64
	clock  int64

	count atomic.Int64

	// durMu guards the durability hook pointer (set at wiring time).
	durMu sync.RWMutex
	dur   Durability
}

func shardOf(name string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return h.Sum32() & (storeShards - 1)
}

func idShardOf(id int64) uint32 { return uint32(id) & (storeShards - 1) }

// NewStore creates (or reattaches to) the policy relations in db.
func NewStore(db *engine.DB) (*Store, error) {
	s := &Store{db: db, nextID: 1}
	for i := range s.queriers {
		s.queriers[i].byQuerier = make(map[string]map[string][]*Policy)
	}
	for i := range s.ids {
		s.ids[i].byID = make(map[int64]*Policy)
	}
	if _, ok := db.Table(TableP); !ok {
		pSchema := storage.MustSchema(
			storage.Column{Name: "id", Type: storage.KindInt},
			storage.Column{Name: "owner", Type: storage.KindInt},
			storage.Column{Name: "querier", Type: storage.KindString},
			storage.Column{Name: "associated_table", Type: storage.KindString},
			storage.Column{Name: "purpose", Type: storage.KindString},
			storage.Column{Name: "action", Type: storage.KindString},
			storage.Column{Name: "inserted_at", Type: storage.KindInt},
		)
		if _, err := db.CreateTable(TableP, pSchema); err != nil {
			return nil, err
		}
		for _, col := range []string{"id", "owner", "querier"} {
			if err := db.CreateIndex(TableP, col); err != nil {
				return nil, err
			}
		}
		ocSchema := storage.MustSchema(
			storage.Column{Name: "id", Type: storage.KindInt},
			storage.Column{Name: "policy_id", Type: storage.KindInt},
			storage.Column{Name: "attr", Type: storage.KindString},
			storage.Column{Name: "op", Type: storage.KindString},
			storage.Column{Name: "val", Type: storage.KindString},
		)
		if _, err := db.CreateTable(TableOC, ocSchema); err != nil {
			return nil, err
		}
		if err := db.CreateIndex(TableOC, "policy_id"); err != nil {
			return nil, err
		}
	} else if err := s.loadFromTables(); err != nil {
		return nil, err
	}
	return s, nil
}

// DB exposes the backing engine.
func (s *Store) DB() *engine.DB { return s.db }

// Len returns the number of stored policies.
func (s *Store) Len() int { return int(s.count.Load()) }

// All returns the stored policies sorted by id. The slice is freshly
// assembled per call; callers must not mutate the policies themselves.
func (s *Store) All() []*Policy {
	out := make([]*Policy, 0, s.count.Load())
	for i := range s.ids {
		sh := &s.ids[i]
		sh.mu.RLock()
		for _, p := range sh.byID {
			out = append(out, p)
		}
		sh.mu.RUnlock()
	}
	Sort(out)
	return out
}

// ByID looks a policy up by id.
func (s *Store) ByID(id int64) (*Policy, bool) {
	sh := &s.ids[idShardOf(id)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	p, ok := sh.byID[id]
	return p, ok
}

// PoliciesFor returns P_QM^i for one relation: allow-policies whose querier
// conditions match the metadata directly or via group membership (§3.2).
// The result is sorted by id, so two queriers with the same applicable set
// get byte-identical signatures. Each principal name touches exactly one
// shard under a read lock, and a policy lives under its own querier name
// only — so visiting each DISTINCT name once yields no duplicates. The
// duplicate-skip below guards against Groups resolvers that return the
// querier itself or repeated group names: a duplicated policy id would
// break signature canonicality (splitting otherwise-identical profiles)
// and duplicate guard arms.
func (s *Store) PoliciesFor(qm Metadata, relation string, groups Groups) []*Policy {
	names := append([]string{qm.Querier}, groups.GroupsOf(qm.Querier)...)
	var out []*Policy
	for i, name := range names {
		dup := false
		for _, prev := range names[:i] {
			if prev == name {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		sh := &s.queriers[shardOf(name)]
		sh.mu.RLock()
		for _, p := range sh.byQuerier[name][relation] {
			if p.Action != Allow || !p.AppliesTo(qm, groups) {
				continue
			}
			out = append(out, p)
		}
		sh.mu.RUnlock()
	}
	Sort(out)
	return out
}

// Insert persists one policy, assigning its ID and insertion timestamp.
// The write goes through engine.Insert so that rP insert triggers (guard
// invalidation, §5.1) fire. The in-memory cache is updated BEFORE the rP
// row lands: the trigger announces the policy to the middleware, and any
// signature resolution racing that announcement must already see the
// policy in the store — caching after the insert would leave a window in
// which a claim re-validates against the pre-insert set and the new grant
// stays invisible until the next churn event.
func (s *Store) Insert(p *Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	s.meta.Lock()
	p.ID = s.nextID
	s.nextID++
	s.clock++
	p.InsertedAt = s.clock
	s.meta.Unlock()

	// Serialise the object conditions BEFORE anything is written: a
	// condition the store cannot persist then aborts with no trace instead
	// of leaving an rP row whose rOC rows are missing — which a reload
	// would reconstruct as a policy with fewer conditions than granted.
	rows, err := conditionRows(p)
	if err != nil {
		return err
	}

	// Log before apply: the AddPolicy record (the whole policy, id and
	// timestamp included) reaches the WAL and is synced before the cache
	// or the relations change, so a crash after the ack can never forget
	// the grant. The commit closure holds the log's serialisation lock
	// across the cache+relation apply below; the rP/rOC inserts inside are
	// not row-logged (LogsTable excludes them), so there is no reentry.
	if d := s.durability(); d != nil {
		commit, err := d.AppendPolicyInsert(p, nil)
		if err != nil {
			return err
		}
		defer commit()
	}

	s.cache(p)
	if err := s.db.Insert(TableP, storage.Row{
		storage.NewInt(p.ID), storage.NewInt(p.Owner), storage.NewString(p.Querier),
		storage.NewString(p.Relation), storage.NewString(p.Purpose),
		storage.NewString(string(p.Action)), storage.NewInt(p.InsertedAt),
	}); err != nil {
		s.uncache(p)
		return err
	}
	for _, r := range rows {
		if err := s.db.Insert(TableOC, r); err != nil {
			// Roll back the half-commit: drop the cached policy and every
			// row that already landed so memory, rP and rOC agree the
			// policy does not exist. (The rP trigger already fired, but it
			// only invalidates claims — a conservative no-op once the
			// policy is gone from the store.)
			s.uncache(p)
			s.deleteRows(p.ID)
			return err
		}
	}
	return nil
}

// BulkLoad persists many policies without firing triggers (initial load).
func (s *Store) BulkLoad(ps []*Policy) error {
	var pRows, ocRows []storage.Row
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			return err
		}
		s.meta.Lock()
		p.ID = s.nextID
		s.nextID++
		s.clock++
		p.InsertedAt = s.clock
		s.meta.Unlock()
		pRows = append(pRows, storage.Row{
			storage.NewInt(p.ID), storage.NewInt(p.Owner), storage.NewString(p.Querier),
			storage.NewString(p.Relation), storage.NewString(p.Purpose),
			storage.NewString(string(p.Action)), storage.NewInt(p.InsertedAt),
		})
		rows, err := conditionRows(p)
		if err != nil {
			return err
		}
		ocRows = append(ocRows, rows...)
		s.cache(p)
	}
	if err := s.db.BulkInsert(TableP, pRows); err != nil {
		return err
	}
	return s.db.BulkInsert(TableOC, ocRows)
}

// cache records a policy in the sharded in-memory indexes.
func (s *Store) cache(p *Policy) {
	qs := &s.queriers[shardOf(p.Querier)]
	qs.mu.Lock()
	byRel, ok := qs.byQuerier[p.Querier]
	if !ok {
		byRel = make(map[string][]*Policy)
		qs.byQuerier[p.Querier] = byRel
	}
	byRel[p.Relation] = append(byRel[p.Relation], p)
	qs.mu.Unlock()

	is := &s.ids[idShardOf(p.ID)]
	is.mu.Lock()
	is.byID[p.ID] = p
	is.mu.Unlock()

	s.count.Add(1)
}

// uncache reverses cache after a failed persist.
func (s *Store) uncache(p *Policy) {
	qs := &s.queriers[shardOf(p.Querier)]
	qs.mu.Lock()
	if byRel, ok := qs.byQuerier[p.Querier]; ok {
		byRel[p.Relation] = removePolicy(byRel[p.Relation], p.ID)
	}
	qs.mu.Unlock()

	is := &s.ids[idShardOf(p.ID)]
	is.mu.Lock()
	delete(is.byID, p.ID)
	is.mu.Unlock()

	s.count.Add(-1)
}

var ocSeq int64

// conditionRows serialises a policy's conditions (owner first) into rOC
// rows: ⟨id, policy_id, attr, op, val⟩ with val as SQL literal text, ranges
// split into two rows as in the paper's Table 5.
func conditionRows(p *Policy) ([]storage.Row, error) {
	ts, err := conditionTriples(p)
	if err != nil {
		return nil, err
	}
	rows := make([]storage.Row, len(ts))
	for i, c := range ts {
		ocSeq++
		rows[i] = storage.Row{
			storage.NewInt(ocSeq), storage.NewInt(p.ID),
			storage.NewString(c.Attr), storage.NewString(c.Op), storage.NewString(c.Val),
		}
	}
	return rows, nil
}

// conditionTriples is the textual serialisation behind conditionRows and
// the WAL's AddPolicy record: ⟨attr, op, val⟩ with val as SQL literal
// text, owner first, ranges split into two triples.
func conditionTriples(p *Policy) ([]ConditionText, error) {
	mk := func(attr, op, val string) ConditionText {
		return ConditionText{Attr: attr, Op: op, Val: val}
	}
	lit := func(v storage.Value) string { return sqlparser.PrintExpr(sqlparser.Lit(v)) }
	ts := []ConditionText{mk(OwnerAttr, "=", lit(storage.NewInt(p.Owner)))}
	for _, c := range p.Conditions {
		switch c.Kind {
		case CondCompare:
			ts = append(ts, mk(c.Attr, c.Op.String(), lit(c.Val)))
		case CondRange:
			ts = append(ts, mk(c.Attr, c.LoOp.String(), lit(c.Lo)))
			ts = append(ts, mk(c.Attr, c.HiOp.String(), lit(c.Hi)))
		case CondIn, CondNotIn:
			op := "IN"
			if c.Kind == CondNotIn {
				op = "NOT IN"
			}
			vals := make([]string, len(c.Vals))
			for i, v := range c.Vals {
				vals[i] = lit(v)
			}
			ts = append(ts, mk(c.Attr, op, "("+strings.Join(vals, ", ")+")"))
		case CondSubquery:
			ts = append(ts, mk(c.Attr, c.Op.String(), "("+c.Subquery+")"))
		default:
			return nil, fmt.Errorf("policy: cannot serialise condition kind %d", c.Kind)
		}
	}
	return ts, nil
}

// Revoke removes a policy from the store and its relations (§6: policies
// can be revoked at any time). The in-memory indexes shrink FIRST, then the
// rows are deleted: callers that cache guarded expressions invalidate those
// caches after Revoke returns (core.Middleware.RevokePolicy does), and any
// signature re-resolution that runs after the invalidation must already see
// the post-revocation set — the reverse order would let a stale set be
// re-validated as fresh.
func (s *Store) Revoke(id int64) (*Policy, error) {
	// Log before apply. The existence check runs inside the log's
	// serialisation lock (as the append's check closure), so a record is
	// only written for a policy that is still present — two racing revokes
	// of the same id serialise on the log, and the loser is rejected
	// before it can append.
	if d := s.durability(); d != nil {
		commit, err := d.AppendPolicyRevoke(id, func() error {
			if _, ok := s.ByID(id); !ok {
				return fmt.Errorf("policy: no policy %d to revoke", id)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		defer commit()
	}
	return s.applyRevoke(id)
}

// applyRevoke removes a policy from the cache and its persisted rows; the
// in-memory shrink happens first (see Revoke's ordering contract).
func (s *Store) applyRevoke(id int64) (*Policy, error) {
	is := &s.ids[idShardOf(id)]
	is.mu.Lock()
	p, ok := is.byID[id]
	if ok {
		delete(is.byID, id)
	}
	is.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("policy: no policy %d to revoke", id)
	}

	qs := &s.queriers[shardOf(p.Querier)]
	qs.mu.Lock()
	if byRel, ok := qs.byQuerier[p.Querier]; ok {
		byRel[p.Relation] = removePolicy(byRel[p.Relation], id)
	}
	qs.mu.Unlock()
	s.count.Add(-1)

	if err := s.deleteRows(id); err != nil {
		return nil, err
	}
	return p, nil
}

// deleteRows removes every persisted rP and rOC row of one policy id
// (used by Revoke, and by Insert to roll back a partial persist).
func (s *Store) deleteRows(id int64) error {
	pTab := s.db.MustTable(TableP)
	var pRows []storage.RowID
	pTab.Scan(func(rowID storage.RowID, r storage.Row) bool {
		if r[0].I == id {
			pRows = append(pRows, rowID)
		}
		return true
	})
	for _, rowID := range pRows {
		if err := pTab.Delete(rowID); err != nil {
			return err
		}
	}
	ocTab := s.db.MustTable(TableOC)
	var ocRows []storage.RowID
	ocTab.Scan(func(rowID storage.RowID, r storage.Row) bool {
		if r[1].I == id {
			ocRows = append(ocRows, rowID)
		}
		return true
	})
	for _, rowID := range ocRows {
		if err := ocTab.Delete(rowID); err != nil {
			return err
		}
	}
	return nil
}

// removePolicy copies ps without id. A fresh slice, not an in-place
// truncation: readers under a shard RLock may still be iterating the old
// backing array.
func removePolicy(ps []*Policy, id int64) []*Policy {
	out := make([]*Policy, 0, len(ps))
	for _, p := range ps {
		if p.ID != id {
			out = append(out, p)
		}
	}
	return out
}

// loadFromTables reconstructs the cache from rP/rOC.
func (s *Store) loadFromTables() error {
	pTab := s.db.MustTable(TableP)
	ocTab := s.db.MustTable(TableOC)

	conds := make(map[int64][]storage.Row)
	ocTab.Scan(func(_ storage.RowID, r storage.Row) bool {
		pid := r[1].I
		conds[pid] = append(conds[pid], r)
		return true
	})

	var firstErr error
	pTab.Scan(func(_ storage.RowID, r storage.Row) bool {
		p := &Policy{
			ID: r[0].I, Owner: r[1].I, Querier: r[2].S, Relation: r[3].S,
			Purpose: r[4].S, Action: Action(r[5].S), InsertedAt: r[6].I,
		}
		cs, err := parseConditions(conds[p.ID])
		if err != nil {
			firstErr = fmt.Errorf("policy %d: %w", p.ID, err)
			return false
		}
		p.Conditions = cs
		s.cache(p)
		s.meta.Lock()
		if p.ID >= s.nextID {
			s.nextID = p.ID + 1
		}
		if p.InsertedAt > s.clock {
			s.clock = p.InsertedAt
		}
		s.meta.Unlock()
		return true
	})
	return firstErr
}

// parseConditions rebuilds ObjectConditions from rOC rows, re-pairing
// adjacent ≥/≤ rows on the same attribute into ranges and dropping the
// owner row (implied by rP.owner).
func parseConditions(rows []storage.Row) ([]ObjectCondition, error) {
	ts := make([]ConditionText, len(rows))
	for i, r := range rows {
		ts[i] = ConditionText{Attr: r[2].S, Op: r[3].S, Val: r[4].S}
	}
	return parseConditionTriples(ts)
}

// parseConditionTriples is the inverse of conditionTriples.
func parseConditionTriples(rows []ConditionText) ([]ObjectCondition, error) {
	var out []ObjectCondition
	for i := 0; i < len(rows); i++ {
		attr, opText, valText := rows[i].Attr, rows[i].Op, rows[i].Val
		if attr == OwnerAttr && opText == "=" {
			continue
		}
		switch opText {
		case "IN", "NOT IN":
			e, err := sqlparser.ParseExpr("x " + opText + " " + valText)
			if err != nil {
				return nil, fmt.Errorf("bad IN list %q: %w", valText, err)
			}
			in, ok := e.(*sqlparser.InExpr)
			if !ok {
				return nil, fmt.Errorf("bad IN list %q", valText)
			}
			var vals []storage.Value
			for _, item := range in.List {
				l, ok := item.(*sqlparser.Literal)
				if !ok {
					return nil, fmt.Errorf("non-literal IN member in %q", valText)
				}
				vals = append(vals, l.Val)
			}
			kind := CondIn
			if opText == "NOT IN" {
				kind = CondNotIn
			}
			out = append(out, ObjectCondition{Attr: attr, Kind: kind, Vals: vals})
			continue
		}
		op, err := parseCmpOp(opText)
		if err != nil {
			return nil, err
		}
		val, err := sqlparser.ParseExpr(valText)
		if err != nil {
			return nil, fmt.Errorf("bad condition value %q: %w", valText, err)
		}
		switch v := val.(type) {
		case *sqlparser.SubqueryExpr:
			out = append(out, ObjectCondition{Attr: attr, Kind: CondSubquery, Op: op,
				Subquery: sqlparser.Print(v.Select)})
		case *sqlparser.Literal:
			// Re-pair a lower bound with an immediately following upper
			// bound on the same attribute into a range condition.
			if (op == sqlparser.CmpGe || op == sqlparser.CmpGt) && i+1 < len(rows) && rows[i+1].Attr == attr {
				nextOp, err := parseCmpOp(rows[i+1].Op)
				if err == nil && (nextOp == sqlparser.CmpLe || nextOp == sqlparser.CmpLt) {
					hiVal, err := sqlparser.ParseExpr(rows[i+1].Val)
					if hiLit, ok := hiVal.(*sqlparser.Literal); err == nil && ok {
						out = append(out, ObjectCondition{Attr: attr, Kind: CondRange,
							Lo: v.Val, LoOp: op, Hi: hiLit.Val, HiOp: nextOp})
						i++
						continue
					}
				}
			}
			out = append(out, ObjectCondition{Attr: attr, Kind: CondCompare, Op: op, Val: v.Val})
		default:
			return nil, fmt.Errorf("unsupported condition value %q", valText)
		}
	}
	return out, nil
}

func parseCmpOp(s string) (sqlparser.CmpOp, error) {
	switch s {
	case "=":
		return sqlparser.CmpEq, nil
	case "!=", "<>":
		return sqlparser.CmpNe, nil
	case "<":
		return sqlparser.CmpLt, nil
	case "<=":
		return sqlparser.CmpLe, nil
	case ">":
		return sqlparser.CmpGt, nil
	case ">=":
		return sqlparser.CmpGe, nil
	}
	return 0, fmt.Errorf("policy: unknown comparison operator %q", s)
}
