package policy

import (
	"fmt"
	"strings"
	"sync"

	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/sqlparser"
	"github.com/sieve-db/sieve/internal/storage"
)

// Table names for policy persistence (§5.1).
const (
	TableP  = "sieve_policies"          // rP
	TableOC = "sieve_object_conditions" // rOC
)

// Store persists policies in the engine's rP and rOC relations and keeps an
// in-memory cache for the hot lookup paths (the Δ operator and P_QM
// filtering). The cache and the relations are maintained together; loading
// an existing database reconstructs the cache from the relations.
type Store struct {
	db *engine.DB

	mu        sync.RWMutex
	all       []*Policy
	byID      map[int64]*Policy
	byQuerier map[string][]*Policy
	nextID    int64
	clock     int64
}

// NewStore creates (or reattaches to) the policy relations in db.
func NewStore(db *engine.DB) (*Store, error) {
	s := &Store{
		db:        db,
		byID:      make(map[int64]*Policy),
		byQuerier: make(map[string][]*Policy),
		nextID:    1,
	}
	if _, ok := db.Table(TableP); !ok {
		pSchema := storage.MustSchema(
			storage.Column{Name: "id", Type: storage.KindInt},
			storage.Column{Name: "owner", Type: storage.KindInt},
			storage.Column{Name: "querier", Type: storage.KindString},
			storage.Column{Name: "associated_table", Type: storage.KindString},
			storage.Column{Name: "purpose", Type: storage.KindString},
			storage.Column{Name: "action", Type: storage.KindString},
			storage.Column{Name: "inserted_at", Type: storage.KindInt},
		)
		if _, err := db.CreateTable(TableP, pSchema); err != nil {
			return nil, err
		}
		for _, col := range []string{"id", "owner", "querier"} {
			if err := db.CreateIndex(TableP, col); err != nil {
				return nil, err
			}
		}
		ocSchema := storage.MustSchema(
			storage.Column{Name: "id", Type: storage.KindInt},
			storage.Column{Name: "policy_id", Type: storage.KindInt},
			storage.Column{Name: "attr", Type: storage.KindString},
			storage.Column{Name: "op", Type: storage.KindString},
			storage.Column{Name: "val", Type: storage.KindString},
		)
		if _, err := db.CreateTable(TableOC, ocSchema); err != nil {
			return nil, err
		}
		if err := db.CreateIndex(TableOC, "policy_id"); err != nil {
			return nil, err
		}
	} else if err := s.loadFromTables(); err != nil {
		return nil, err
	}
	return s, nil
}

// DB exposes the backing engine.
func (s *Store) DB() *engine.DB { return s.db }

// Len returns the number of stored policies.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.all)
}

// All returns the stored policies (shared slice; callers must not mutate).
func (s *Store) All() []*Policy {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.all
}

// ByID looks a policy up by id.
func (s *Store) ByID(id int64) (*Policy, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.byID[id]
	return p, ok
}

// PoliciesFor returns P_QM^i for one relation: allow-policies whose querier
// conditions match the metadata directly or via group membership (§3.2).
func (s *Store) PoliciesFor(qm Metadata, relation string, groups Groups) []*Policy {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := append([]string{qm.Querier}, groups.GroupsOf(qm.Querier)...)
	var out []*Policy
	seen := make(map[int64]bool)
	for _, name := range names {
		for _, p := range s.byQuerier[name] {
			if seen[p.ID] {
				continue
			}
			if p.Relation != relation || p.Action != Allow {
				continue
			}
			if !p.AppliesTo(qm, groups) {
				continue
			}
			seen[p.ID] = true
			out = append(out, p)
		}
	}
	Sort(out)
	return out
}

// Insert persists one policy, assigning its ID and insertion timestamp.
// The write goes through engine.Insert so that rP insert triggers (guard
// invalidation, §5.1) fire.
func (s *Store) Insert(p *Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	p.ID = s.nextID
	s.nextID++
	s.clock++
	p.InsertedAt = s.clock
	s.mu.Unlock()

	if err := s.db.Insert(TableP, storage.Row{
		storage.NewInt(p.ID), storage.NewInt(p.Owner), storage.NewString(p.Querier),
		storage.NewString(p.Relation), storage.NewString(p.Purpose),
		storage.NewString(string(p.Action)), storage.NewInt(p.InsertedAt),
	}); err != nil {
		return err
	}
	rows, err := conditionRows(p)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := s.db.Insert(TableOC, r); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.cache(p)
	s.mu.Unlock()
	return nil
}

// BulkLoad persists many policies without firing triggers (initial load).
func (s *Store) BulkLoad(ps []*Policy) error {
	var pRows, ocRows []storage.Row
	s.mu.Lock()
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			s.mu.Unlock()
			return err
		}
		p.ID = s.nextID
		s.nextID++
		s.clock++
		p.InsertedAt = s.clock
		pRows = append(pRows, storage.Row{
			storage.NewInt(p.ID), storage.NewInt(p.Owner), storage.NewString(p.Querier),
			storage.NewString(p.Relation), storage.NewString(p.Purpose),
			storage.NewString(string(p.Action)), storage.NewInt(p.InsertedAt),
		})
		rows, err := conditionRows(p)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		ocRows = append(ocRows, rows...)
		s.cache(p)
	}
	s.mu.Unlock()
	if err := s.db.BulkInsert(TableP, pRows); err != nil {
		return err
	}
	return s.db.BulkInsert(TableOC, ocRows)
}

// cache records a policy in the in-memory maps. Callers hold s.mu.
func (s *Store) cache(p *Policy) {
	s.all = append(s.all, p)
	s.byID[p.ID] = p
	s.byQuerier[p.Querier] = append(s.byQuerier[p.Querier], p)
}

var ocSeq int64

// conditionRows serialises a policy's conditions (owner first) into rOC
// rows: ⟨id, policy_id, attr, op, val⟩ with val as SQL literal text, ranges
// split into two rows as in the paper's Table 5.
func conditionRows(p *Policy) ([]storage.Row, error) {
	mk := func(attr, op, val string) storage.Row {
		ocSeq++
		return storage.Row{
			storage.NewInt(ocSeq), storage.NewInt(p.ID),
			storage.NewString(attr), storage.NewString(op), storage.NewString(val),
		}
	}
	lit := func(v storage.Value) string { return sqlparser.PrintExpr(sqlparser.Lit(v)) }
	rows := []storage.Row{mk(OwnerAttr, "=", lit(storage.NewInt(p.Owner)))}
	for _, c := range p.Conditions {
		switch c.Kind {
		case CondCompare:
			rows = append(rows, mk(c.Attr, c.Op.String(), lit(c.Val)))
		case CondRange:
			rows = append(rows, mk(c.Attr, c.LoOp.String(), lit(c.Lo)))
			rows = append(rows, mk(c.Attr, c.HiOp.String(), lit(c.Hi)))
		case CondIn, CondNotIn:
			op := "IN"
			if c.Kind == CondNotIn {
				op = "NOT IN"
			}
			vals := make([]string, len(c.Vals))
			for i, v := range c.Vals {
				vals[i] = lit(v)
			}
			rows = append(rows, mk(c.Attr, op, "("+strings.Join(vals, ", ")+")"))
		case CondSubquery:
			rows = append(rows, mk(c.Attr, c.Op.String(), "("+c.Subquery+")"))
		default:
			return nil, fmt.Errorf("policy: cannot serialise condition kind %d", c.Kind)
		}
	}
	return rows, nil
}

// Revoke removes a policy from the store and its relations (§6: policies
// can be revoked at any time). Callers that cache guarded expressions must
// invalidate them; core.Middleware.RevokePolicy does both.
func (s *Store) Revoke(id int64) (*Policy, error) {
	s.mu.Lock()
	p, ok := s.byID[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("policy: no policy %d to revoke", id)
	}
	delete(s.byID, id)
	s.all = removePolicy(s.all, id)
	s.byQuerier[p.Querier] = removePolicy(s.byQuerier[p.Querier], id)
	s.mu.Unlock()

	pTab := s.db.MustTable(TableP)
	var pRows []storage.RowID
	pTab.Scan(func(rowID storage.RowID, r storage.Row) bool {
		if r[0].I == id {
			pRows = append(pRows, rowID)
		}
		return true
	})
	for _, rowID := range pRows {
		if err := pTab.Delete(rowID); err != nil {
			return nil, err
		}
	}
	ocTab := s.db.MustTable(TableOC)
	var ocRows []storage.RowID
	ocTab.Scan(func(rowID storage.RowID, r storage.Row) bool {
		if r[1].I == id {
			ocRows = append(ocRows, rowID)
		}
		return true
	})
	for _, rowID := range ocRows {
		if err := ocTab.Delete(rowID); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func removePolicy(ps []*Policy, id int64) []*Policy {
	out := ps[:0]
	for _, p := range ps {
		if p.ID != id {
			out = append(out, p)
		}
	}
	return out
}

// loadFromTables reconstructs the cache from rP/rOC.
func (s *Store) loadFromTables() error {
	pTab := s.db.MustTable(TableP)
	ocTab := s.db.MustTable(TableOC)

	conds := make(map[int64][]storage.Row)
	ocTab.Scan(func(_ storage.RowID, r storage.Row) bool {
		pid := r[1].I
		conds[pid] = append(conds[pid], r)
		return true
	})

	var firstErr error
	pTab.Scan(func(_ storage.RowID, r storage.Row) bool {
		p := &Policy{
			ID: r[0].I, Owner: r[1].I, Querier: r[2].S, Relation: r[3].S,
			Purpose: r[4].S, Action: Action(r[5].S), InsertedAt: r[6].I,
		}
		cs, err := parseConditions(conds[p.ID])
		if err != nil {
			firstErr = fmt.Errorf("policy %d: %w", p.ID, err)
			return false
		}
		p.Conditions = cs
		s.cache(p)
		if p.ID >= s.nextID {
			s.nextID = p.ID + 1
		}
		if p.InsertedAt > s.clock {
			s.clock = p.InsertedAt
		}
		return true
	})
	Sort(s.all)
	return firstErr
}

// parseConditions rebuilds ObjectConditions from rOC rows, re-pairing
// adjacent ≥/≤ rows on the same attribute into ranges and dropping the
// owner row (implied by rP.owner).
func parseConditions(rows []storage.Row) ([]ObjectCondition, error) {
	var out []ObjectCondition
	for i := 0; i < len(rows); i++ {
		attr, opText, valText := rows[i][2].S, rows[i][3].S, rows[i][4].S
		if attr == OwnerAttr && opText == "=" {
			continue
		}
		switch opText {
		case "IN", "NOT IN":
			e, err := sqlparser.ParseExpr("x " + opText + " " + valText)
			if err != nil {
				return nil, fmt.Errorf("bad IN list %q: %w", valText, err)
			}
			in, ok := e.(*sqlparser.InExpr)
			if !ok {
				return nil, fmt.Errorf("bad IN list %q", valText)
			}
			var vals []storage.Value
			for _, item := range in.List {
				l, ok := item.(*sqlparser.Literal)
				if !ok {
					return nil, fmt.Errorf("non-literal IN member in %q", valText)
				}
				vals = append(vals, l.Val)
			}
			kind := CondIn
			if opText == "NOT IN" {
				kind = CondNotIn
			}
			out = append(out, ObjectCondition{Attr: attr, Kind: kind, Vals: vals})
			continue
		}
		op, err := parseCmpOp(opText)
		if err != nil {
			return nil, err
		}
		val, err := sqlparser.ParseExpr(valText)
		if err != nil {
			return nil, fmt.Errorf("bad condition value %q: %w", valText, err)
		}
		switch v := val.(type) {
		case *sqlparser.SubqueryExpr:
			out = append(out, ObjectCondition{Attr: attr, Kind: CondSubquery, Op: op,
				Subquery: sqlparser.Print(v.Select)})
		case *sqlparser.Literal:
			// Re-pair a lower bound with an immediately following upper
			// bound on the same attribute into a range condition.
			if (op == sqlparser.CmpGe || op == sqlparser.CmpGt) && i+1 < len(rows) && rows[i+1][2].S == attr {
				nextOp, err := parseCmpOp(rows[i+1][3].S)
				if err == nil && (nextOp == sqlparser.CmpLe || nextOp == sqlparser.CmpLt) {
					hiVal, err := sqlparser.ParseExpr(rows[i+1][4].S)
					if hiLit, ok := hiVal.(*sqlparser.Literal); err == nil && ok {
						out = append(out, ObjectCondition{Attr: attr, Kind: CondRange,
							Lo: v.Val, LoOp: op, Hi: hiLit.Val, HiOp: nextOp})
						i++
						continue
					}
				}
			}
			out = append(out, ObjectCondition{Attr: attr, Kind: CondCompare, Op: op, Val: v.Val})
		default:
			return nil, fmt.Errorf("unsupported condition value %q", valText)
		}
	}
	return out, nil
}

func parseCmpOp(s string) (sqlparser.CmpOp, error) {
	switch s {
	case "=":
		return sqlparser.CmpEq, nil
	case "!=", "<>":
		return sqlparser.CmpNe, nil
	case "<":
		return sqlparser.CmpLt, nil
	case "<=":
		return sqlparser.CmpLe, nil
	case ">":
		return sqlparser.CmpGt, nil
	case ">=":
		return sqlparser.CmpGe, nil
	}
	return 0, fmt.Errorf("policy: unknown comparison operator %q", s)
}
