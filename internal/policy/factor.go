package policy

// AnyQuerier, used as a deny policy's querier, applies the denial to every
// querier ("deny everyone access to my location when in my office", §3.1).
const AnyQuerier = "everyone"

// FactorDeny folds deny policies into the allow set (§3.1): the engine's
// semantics are default-deny with explicit allow only, so an overlapping
// deny is rewritten as a restriction of each allow policy it intersects.
//
// For an allow policy A and an applicable deny policy D with object
// conditions d1 ∧ … ∧ dn, A is replaced by the set {A ∧ ¬d1, …, A ∧ ¬dn}
// (the DNF of A ∧ ¬(d1∧…∧dn)). A deny with no extra conditions removes the
// allow entirely. Range negations split into two one-sided conditions, so
// one allow can fan out into several.
func FactorDeny(allows, denies []*Policy) []*Policy {
	out := make([]*Policy, 0, len(allows))
	for _, a := range allows {
		frontier := []*Policy{a}
		for _, d := range denies {
			if !denyApplies(d, a) {
				continue
			}
			var next []*Policy
			for _, cur := range frontier {
				next = append(next, carve(cur, d)...)
			}
			frontier = next
		}
		out = append(out, frontier...)
	}
	return out
}

// denyApplies reports whether deny d restricts allow a.
func denyApplies(d, a *Policy) bool {
	if d.Action != Deny || a.Action != Allow {
		return false
	}
	if d.Owner != a.Owner || d.Relation != a.Relation {
		return false
	}
	if d.Querier != AnyQuerier && d.Querier != a.Querier {
		return false
	}
	if d.Purpose != AnyPurpose && d.Purpose != a.Purpose {
		return false
	}
	return true
}

// carve returns the allow policies equivalent to a ∧ ¬OC(d).
func carve(a, d *Policy) []*Policy {
	if len(d.Conditions) == 0 {
		return nil // deny covers the whole allow
	}
	var out []*Policy
	for _, dc := range d.Conditions {
		for _, neg := range negate(dc) {
			clone := *a
			clone.Conditions = append(append([]ObjectCondition{}, a.Conditions...), neg)
			out = append(out, &clone)
		}
	}
	return out
}

// negate returns conditions whose disjunction is ¬c.
func negate(c ObjectCondition) []ObjectCondition {
	switch c.Kind {
	case CondCompare:
		return []ObjectCondition{{Attr: c.Attr, Kind: CondCompare, Op: c.Op.Negate(), Val: c.Val}}
	case CondRange:
		// ¬(lo ≤ x ≤ hi) = x < lo ∨ x > hi, with bounds flipped per op.
		return []ObjectCondition{
			{Attr: c.Attr, Kind: CondCompare, Op: c.LoOp.Negate(), Val: c.Lo},
			{Attr: c.Attr, Kind: CondCompare, Op: c.HiOp.Negate(), Val: c.Hi},
		}
	case CondIn:
		return []ObjectCondition{{Attr: c.Attr, Kind: CondNotIn, Vals: c.Vals}}
	case CondNotIn:
		return []ObjectCondition{{Attr: c.Attr, Kind: CondIn, Vals: c.Vals}}
	case CondSubquery:
		return []ObjectCondition{{Attr: c.Attr, Kind: CondSubquery, Op: c.Op.Negate(), Subquery: c.Subquery}}
	}
	return nil
}
