package policy

import (
	"fmt"

	"github.com/sieve-db/sieve/internal/storage"
)

// Durability is the store's WAL hook (internal/wal implements it). Policy
// mutations are logged LOGICALLY — one AddPolicy record carrying the whole
// policy, one RevokePolicy record carrying the id — rather than as rP/rOC
// row mutations, so a replayed policy is rebuilt through the store's own
// persist path and the no-half-commit invariant (cache, rP and rOC agree)
// holds on recovery exactly as it does live.
//
// The commit-closure contract matches engine.WAL: Append* runs check under
// the log's serialisation lock, appends and syncs the record, and returns
// with the lock held; the store applies the mutation and releases it via
// commit. check may be nil when the operation was fully validated before
// the call.
type Durability interface {
	AppendPolicyInsert(p *Policy, check func() error) (commit func(), err error)
	AppendPolicyRevoke(id int64, check func() error) (commit func(), err error)
}

// SetDurability attaches the WAL hook. Attach at wiring time, after any
// recovery replay: ApplyLogged and ApplyRevokeLogged must run unhooked or
// replay would re-log its own input.
func (s *Store) SetDurability(d Durability) {
	s.durMu.Lock()
	defer s.durMu.Unlock()
	s.dur = d
}

// durability returns the attached hook, or nil.
func (s *Store) durability() Durability {
	s.durMu.RLock()
	defer s.durMu.RUnlock()
	return s.dur
}

// ConditionText is one object condition in the store's textual
// serialisation: ⟨attr, op, val⟩ with val as SQL literal text — the same
// triples the rOC relation persists (Table 5) and the WAL's AddPolicy
// record embeds.
type ConditionText struct {
	Attr, Op, Val string
}

// MarshalConditionText serialises a policy's conditions (owner triple
// first, ranges split in two) for the WAL's AddPolicy record.
func MarshalConditionText(p *Policy) ([]ConditionText, error) {
	return conditionTriples(p)
}

// UnmarshalConditionText rebuilds ObjectConditions from serialised
// triples, dropping the owner triple (implied by the policy's Owner).
func UnmarshalConditionText(ts []ConditionText) ([]ObjectCondition, error) {
	return parseConditionTriples(ts)
}

// ApplyLogged re-inserts a recovered policy during WAL replay, keeping its
// logged id and timestamp. It follows Insert's persist path (cache first,
// then rP and rOC) but assigns nothing: the id generator and clock only
// ratchet forward past the logged values. The store must not have a
// durability hook attached yet.
func (s *Store) ApplyLogged(p *Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.ID <= 0 {
		return fmt.Errorf("policy: replayed policy has no id")
	}
	if _, exists := s.ByID(p.ID); exists {
		return fmt.Errorf("policy: replayed policy %d already present", p.ID)
	}
	s.meta.Lock()
	if p.ID >= s.nextID {
		s.nextID = p.ID + 1
	}
	if p.InsertedAt > s.clock {
		s.clock = p.InsertedAt
	}
	s.meta.Unlock()
	rows, err := conditionRows(p)
	if err != nil {
		return err
	}
	s.cache(p)
	if err := s.db.Insert(TableP, storage.Row{
		storage.NewInt(p.ID), storage.NewInt(p.Owner), storage.NewString(p.Querier),
		storage.NewString(p.Relation), storage.NewString(p.Purpose),
		storage.NewString(string(p.Action)), storage.NewInt(p.InsertedAt),
	}); err != nil {
		s.uncache(p)
		return err
	}
	for _, r := range rows {
		if err := s.db.Insert(TableOC, r); err != nil {
			s.uncache(p)
			if derr := s.deleteRows(p.ID); derr != nil {
				return fmt.Errorf("%w (rollback also failed: %v)", err, derr)
			}
			return err
		}
	}
	return nil
}

// ApplyRevokeLogged replays a revocation. ok is false when the id is
// unknown; since Revoke validates existence under the log lock before
// appending, a replayed revoke of a missing policy indicates a diverged
// log and the caller decides how hard to fail.
func (s *Store) ApplyRevokeLogged(id int64) (p *Policy, ok bool) {
	p, err := s.applyRevoke(id)
	if err != nil {
		return nil, false
	}
	return p, true
}
