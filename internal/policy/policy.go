// Package policy implements SIEVE's access-control policy model (§3.1): a
// policy is ⟨object conditions, querier conditions, action⟩ where object
// conditions are a conjunction over tuple attributes (constants, ranges,
// IN-lists, or derived-value subqueries), querier conditions follow the
// purpose-based access control model (querier + purpose), and the action is
// allow (deny policies are factored into allow policies, §3.1).
//
// The package also persists policies in the two middleware relations rP and
// rOC (§5.1) inside the embedded engine, exactly as SIEVE stores them in
// MySQL/PostgreSQL.
package policy

import (
	"fmt"
	"sort"
	"strings"

	"github.com/sieve-db/sieve/internal/sqlparser"
	"github.com/sieve-db/sieve/internal/storage"
)

// Action is a policy's enforcement operation.
type Action string

// Actions. The enforcement semantics are default-deny (§3.1): tuples not
// covered by an allow policy are excluded, so Deny only appears transiently
// before FactorDeny folds it into the allow set.
const (
	Allow Action = "allow"
	Deny  Action = "deny"
)

// CondKind discriminates object condition shapes.
type CondKind int

// Object condition kinds.
const (
	// CondCompare is attr op constant.
	CondCompare CondKind = iota
	// CondRange is the paper's ⟨attr, op1, val1, op2, val2⟩ two-sided range.
	CondRange
	// CondIn is attr IN (constants).
	CondIn
	// CondNotIn is attr NOT IN (constants).
	CondNotIn
	// CondSubquery is attr op (SELECT ...): a derived value (§3.1) evaluated
	// per tuple, possibly correlated with the tuple's attributes.
	CondSubquery
)

// ObjectCondition is one conjunct of a policy's object conditions.
type ObjectCondition struct {
	Attr string
	Kind CondKind

	// CondCompare / CondSubquery comparison operator.
	Op sqlparser.CmpOp
	// CondCompare constant.
	Val storage.Value

	// CondRange bounds; LoOp ∈ {≥, >}, HiOp ∈ {≤, <}.
	Lo, Hi     storage.Value
	LoOp, HiOp sqlparser.CmpOp

	// CondIn / CondNotIn members.
	Vals []storage.Value

	// CondSubquery SQL text (a SELECT statement).
	Subquery string
}

// Compare builds attr op constant.
func Compare(attr string, op sqlparser.CmpOp, val storage.Value) ObjectCondition {
	return ObjectCondition{Attr: attr, Kind: CondCompare, Op: op, Val: val}
}

// RangeClosed builds lo ≤ attr ≤ hi.
func RangeClosed(attr string, lo, hi storage.Value) ObjectCondition {
	return ObjectCondition{Attr: attr, Kind: CondRange, Lo: lo, Hi: hi,
		LoOp: sqlparser.CmpGe, HiOp: sqlparser.CmpLe}
}

// In builds attr IN (vals...).
func In(attr string, vals ...storage.Value) ObjectCondition {
	return ObjectCondition{Attr: attr, Kind: CondIn, Vals: vals}
}

// NotIn builds attr NOT IN (vals...).
func NotIn(attr string, vals ...storage.Value) ObjectCondition {
	return ObjectCondition{Attr: attr, Kind: CondNotIn, Vals: vals}
}

// DerivedValue builds attr op (SELECT ...).
func DerivedValue(attr string, op sqlparser.CmpOp, selectSQL string) ObjectCondition {
	return ObjectCondition{Attr: attr, Kind: CondSubquery, Op: op, Subquery: selectSQL}
}

// String renders the condition as SQL.
func (c ObjectCondition) String() string { return sqlparser.PrintExpr(c.Expr("")) }

// Interval maps the condition to a closed value interval [lo, hi] with
// NULL meaning unbounded on that side; for CondIn it is the hull of the
// members. ok is false for shapes an interval cannot represent (NOT IN,
// inequality, derived values). Guard implication checks and zone-map
// pruning estimates both reason over this form.
func (c ObjectCondition) Interval() (lo, hi storage.Value, ok bool) {
	switch c.Kind {
	case CondCompare:
		switch c.Op {
		case sqlparser.CmpEq:
			return c.Val, c.Val, true
		case sqlparser.CmpLe, sqlparser.CmpLt:
			return storage.Null, c.Val, true
		case sqlparser.CmpGe, sqlparser.CmpGt:
			return c.Val, storage.Null, true
		}
		return storage.Null, storage.Null, false
	case CondRange:
		return c.Lo, c.Hi, true
	case CondIn:
		if len(c.Vals) == 0 {
			return storage.Null, storage.Null, false
		}
		lo, hi = c.Vals[0], c.Vals[0]
		for _, v := range c.Vals[1:] {
			if storage.Less(v, lo) {
				lo = v
			}
			if storage.Less(hi, v) {
				hi = v
			}
		}
		return lo, hi, true
	}
	return storage.Null, storage.Null, false
}

// QuerierCondition is an additional querier-context conjunct beyond the
// mandatory querier and purpose (e.g. time of day, source address).
type QuerierCondition struct {
	Attr string
	Val  string
}

// Policy is one access control policy.
type Policy struct {
	ID       int64
	Owner    int64  // the ri.owner value whose tuples this policy controls
	Querier  string // user or group the policy grants access to
	Purpose  string // Pur-BAC purpose the grant is limited to
	Relation string // associated table
	Action   Action
	// InsertedAt is a logical insertion timestamp (monotonic counter).
	InsertedAt int64

	// Conditions are the non-owner object conditions. The mandatory
	// oc_owner (§3.1) is implied by Owner and materialised by OwnerCondition
	// and Expr; keeping it implicit makes the invariant "exactly one owner
	// equality per policy" unbreakable by construction.
	Conditions []ObjectCondition

	// ExtraQuerier holds querier conditions beyond querier and purpose.
	ExtraQuerier []QuerierCondition
}

// AnyPurpose matches every query purpose when used as a policy's Purpose.
const AnyPurpose = "any"

// OwnerAttr is the attribute name of the mandatory owner column. The paper
// assumes every relation carries an indexed owner attribute (§3.1).
const OwnerAttr = "owner"

// OwnerCondition materialises the policy's implicit owner equality.
func (p *Policy) OwnerCondition() ObjectCondition {
	return Compare(OwnerAttr, sqlparser.CmpEq, storage.NewInt(p.Owner))
}

// AllConditions returns the owner condition followed by the rest; this is
// the paper's OC_l.
func (p *Policy) AllConditions() []ObjectCondition {
	out := make([]ObjectCondition, 0, len(p.Conditions)+1)
	out = append(out, p.OwnerCondition())
	out = append(out, p.Conditions...)
	return out
}

// Validate checks structural invariants.
func (p *Policy) Validate() error {
	if p.Relation == "" {
		return fmt.Errorf("policy: missing relation")
	}
	if p.Querier == "" {
		return fmt.Errorf("policy: missing querier")
	}
	if p.Purpose == "" {
		return fmt.Errorf("policy: missing purpose")
	}
	if p.Action != Allow && p.Action != Deny {
		return fmt.Errorf("policy: invalid action %q", p.Action)
	}
	for _, c := range p.Conditions {
		if c.Attr == "" {
			return fmt.Errorf("policy: condition with empty attribute")
		}
		if c.Attr == OwnerAttr {
			return fmt.Errorf("policy: explicit owner condition; Owner field implies it")
		}
		switch c.Kind {
		case CondRange:
			if c.LoOp != sqlparser.CmpGe && c.LoOp != sqlparser.CmpGt {
				return fmt.Errorf("policy: bad range lower op %v", c.LoOp)
			}
			if c.HiOp != sqlparser.CmpLe && c.HiOp != sqlparser.CmpLt {
				return fmt.Errorf("policy: bad range upper op %v", c.HiOp)
			}
		case CondIn, CondNotIn:
			if len(c.Vals) == 0 {
				return fmt.Errorf("policy: empty IN list on %s", c.Attr)
			}
		case CondSubquery:
			if _, err := sqlparser.Parse(c.Subquery); err != nil {
				return fmt.Errorf("policy: bad derived-value subquery: %w", err)
			}
		}
	}
	return nil
}

// Metadata is the query metadata QM (§3.1): the identity of the querier and
// the purpose of the query, plus any further querier context (the paper
// names the querier's IP or the time of day) matched against policies'
// ExtraQuerier conditions.
type Metadata struct {
	Querier string
	Purpose string
	Context map[string]string
}

// Groups resolves group memberships: GroupsOf returns the (transitive)
// groups a user belongs to. Groups are hierarchical in the paper's model;
// implementations return the flattened closure.
type Groups interface {
	GroupsOf(member string) []string
}

// StaticGroups is an in-memory Groups implementation.
type StaticGroups map[string][]string

// GroupsOf returns the member's groups.
func (g StaticGroups) GroupsOf(member string) []string { return g[member] }

// NoGroups is a Groups with no memberships.
var NoGroups = StaticGroups{}

// AppliesTo reports whether the policy is relevant to the query metadata
// (the P_QM filter, §3.2): purposes must match (or the policy covers any
// purpose), the querier must equal the policy's querier or belong to the
// policy's querier group, and any extra querier conditions must match the
// metadata's context.
func (p *Policy) AppliesTo(qm Metadata, groups Groups) bool {
	if p.Purpose != AnyPurpose && p.Purpose != qm.Purpose {
		return false
	}
	for _, qc := range p.ExtraQuerier {
		if qm.Context[qc.Attr] != qc.Val {
			return false
		}
	}
	if p.Querier == qm.Querier {
		return true
	}
	for _, g := range groups.GroupsOf(qm.Querier) {
		if p.Querier == g {
			return true
		}
	}
	return false
}

// Filter returns the subset of policies relevant to qm for the relation,
// i.e. P_QM^i restricted to one table.
func Filter(ps []*Policy, qm Metadata, relation string, groups Groups) []*Policy {
	var out []*Policy
	for _, p := range ps {
		if p.Relation == relation && p.Action == Allow && p.AppliesTo(qm, groups) {
			out = append(out, p)
		}
	}
	return out
}

// Sort orders policies by ID for deterministic output.
func Sort(ps []*Policy) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].ID < ps[j].ID })
}

// String renders a compact description.
func (p *Policy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy %d: owner=%d querier=%s purpose=%s %s on %s",
		p.ID, p.Owner, p.Querier, p.Purpose, p.Action, p.Relation)
	for _, c := range p.Conditions {
		b.WriteString(" ∧ ")
		b.WriteString(c.String())
	}
	return b.String()
}
