package policy

import (
	"reflect"
	"testing"

	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/sqlparser"
	"github.com/sieve-db/sieve/internal/storage"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	db := engine.New(engine.MySQL())
	s, err := NewStore(db)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func samplePolicies() []*Policy {
	john := &Policy{
		Owner: 120, Querier: "Prof. Smith", Purpose: "Attendance",
		Relation: "WiFi_Dataset", Action: Allow,
		Conditions: []ObjectCondition{
			RangeClosed("ts_time", storage.MustTime("09:00"), storage.MustTime("10:00")),
			Compare("wifiAP", sqlparser.CmpEq, storage.NewInt(1200)),
		},
	}
	mary := &Policy{
		Owner: 145, Querier: "Prof. Smith", Purpose: "Attendance",
		Relation: "WiFi_Dataset", Action: Allow,
		Conditions: []ObjectCondition{
			Compare("wifiAP", sqlparser.CmpEq, storage.NewInt(2300)),
		},
	}
	derived := &Policy{
		Owner: 120, Querier: "Prof. Smith", Purpose: "Colocation",
		Relation: "WiFi_Dataset", Action: Allow,
		Conditions: []ObjectCondition{
			DerivedValue("wifiAP", sqlparser.CmpEq,
				"SELECT W2.wifiAP FROM WiFi_Dataset AS W2 WHERE W2.ts_time = W.ts_time AND W2.owner = 7"),
		},
	}
	inlist := &Policy{
		Owner: 99, Querier: "Bob", Purpose: "Lunch",
		Relation: "WiFi_Dataset", Action: Allow,
		Conditions: []ObjectCondition{
			In("wifiAP", storage.NewInt(1), storage.NewInt(2), storage.NewInt(3)),
			NotIn("ts_date", storage.NewDate(5)),
		},
	}
	return []*Policy{john, mary, derived, inlist}
}

func TestStoreInsertAssignsIDsAndTimestamps(t *testing.T) {
	s := newStore(t)
	ps := samplePolicies()
	for _, p := range ps {
		if err := s.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i, p := range ps {
		if p.ID != int64(i+1) {
			t.Errorf("policy %d: ID = %d", i, p.ID)
		}
		if p.InsertedAt == 0 {
			t.Errorf("policy %d: missing timestamp", i)
		}
	}
	got, ok := s.ByID(2)
	if !ok || got.Owner != 145 {
		t.Fatalf("ByID(2) = %v, %v", got, ok)
	}
	if _, ok := s.ByID(99); ok {
		t.Error("ByID must miss for unknown id")
	}
}

func TestStoreInsertRejectsInvalid(t *testing.T) {
	s := newStore(t)
	if err := s.Insert(&Policy{}); err == nil {
		t.Error("invalid policy must be rejected")
	}
}

func TestStorePersistsToEngineTables(t *testing.T) {
	s := newStore(t)
	for _, p := range samplePolicies() {
		if err := s.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.DB().Query("SELECT count(*) FROM " + TableP)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 4 {
		t.Fatalf("rP rows = %v", res.Rows[0][0])
	}
	// Every policy has an owner condition row plus its own conditions; the
	// range splits into two rows (Table 5 layout).
	res2, err := s.DB().Query("SELECT count(*) FROM " + TableOC + " WHERE policy_id = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rows[0][0].I != 4 { // owner, ts_time ≥, ts_time ≤, wifiAP =
		t.Fatalf("rOC rows for policy 1 = %v, want 4", res2.Rows[0][0])
	}
}

func TestStoreRoundTripThroughTables(t *testing.T) {
	s := newStore(t)
	orig := samplePolicies()
	for _, p := range orig {
		if err := s.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	// Re-attach a fresh store to the same engine: it must reload the cache.
	s2, err := NewStore(s.DB())
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != len(orig) {
		t.Fatalf("reloaded Len = %d, want %d", s2.Len(), len(orig))
	}
	for _, want := range orig {
		got, ok := s2.ByID(want.ID)
		if !ok {
			t.Fatalf("policy %d missing after reload", want.ID)
		}
		if got.Owner != want.Owner || got.Querier != want.Querier ||
			got.Purpose != want.Purpose || got.Relation != want.Relation ||
			got.Action != want.Action {
			t.Errorf("policy %d header mismatch: %+v vs %+v", want.ID, got, want)
		}
		if !reflect.DeepEqual(got.Conditions, want.Conditions) {
			t.Errorf("policy %d conditions mismatch:\n got %#v\nwant %#v", want.ID, got.Conditions, want.Conditions)
		}
	}
	// IDs continue after reload.
	extra := samplePolicies()[1]
	extra.ID = 0
	if err := s2.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if extra.ID != int64(len(orig)+1) {
		t.Errorf("post-reload ID = %d, want %d", extra.ID, len(orig)+1)
	}
}

func TestStoreBulkLoadSkipsTriggers(t *testing.T) {
	s := newStore(t)
	fired := 0
	s.DB().OnInsert(TableP, func(string, storage.Row) { fired++ })
	if err := s.BulkLoad(samplePolicies()); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Errorf("BulkLoad fired %d triggers, want 0", fired)
	}
	if err := s.Insert(samplePolicies()[0]); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("Insert fired %d triggers, want 1", fired)
	}
}

func TestPoliciesForFiltersByMetadata(t *testing.T) {
	s := newStore(t)
	if err := s.BulkLoad(samplePolicies()); err != nil {
		t.Fatal(err)
	}
	qm := Metadata{Querier: "Prof. Smith", Purpose: "Attendance"}
	got := s.PoliciesFor(qm, "WiFi_Dataset", NoGroups)
	if len(got) != 2 {
		t.Fatalf("PoliciesFor = %d, want 2", len(got))
	}
	for _, p := range got {
		if p.Querier != "Prof. Smith" || p.Purpose != "Attendance" {
			t.Errorf("leaked policy %v", p)
		}
	}
	if got := s.PoliciesFor(Metadata{Querier: "Nobody", Purpose: "x"}, "WiFi_Dataset", NoGroups); len(got) != 0 {
		t.Errorf("unknown querier got %d policies", len(got))
	}
	// Group-mediated match.
	grp := &Policy{Owner: 7, Querier: "faculty", Purpose: "Attendance",
		Relation: "WiFi_Dataset", Action: Allow}
	if err := s.Insert(grp); err != nil {
		t.Fatal(err)
	}
	groups := StaticGroups{"Prof. Smith": {"faculty"}}
	got2 := s.PoliciesFor(qm, "WiFi_Dataset", groups)
	if len(got2) != 3 {
		t.Fatalf("group-resolved PoliciesFor = %d, want 3", len(got2))
	}
}

func TestStoreQueryableLikePaperTable4(t *testing.T) {
	// §5.1: policies are data; SIEVE (and administrators) can query them.
	s := newStore(t)
	if err := s.BulkLoad(samplePolicies()); err != nil {
		t.Fatal(err)
	}
	res, err := s.DB().Query(
		"SELECT p.id, oc.attr, oc.op, oc.val FROM " + TableP + " AS p, " + TableOC + " AS oc " +
			"WHERE oc.policy_id = p.id AND p.querier = 'Prof. Smith' AND oc.attr = 'wifiAP' ORDER BY p.id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatalf("join over rP/rOC returned %d rows", len(res.Rows))
	}
	if res.Rows[0][2].S != "=" || res.Rows[0][3].S != "1200" {
		t.Errorf("first condition row = %v", res.Rows[0])
	}
}

func TestInsertAbortsCleanlyOnUnserialisableCondition(t *testing.T) {
	// A condition kind the store cannot serialise must abort the insert
	// with NO trace: no cached policy, no rP row, no rOC rows. A
	// half-committed insert (rP row without its conditions) would make a
	// reload reconstruct the policy with fewer conditions than granted,
	// silently widening the grant.
	s := newStore(t)
	bad := &Policy{
		Owner: 7, Querier: "Mallory", Purpose: "Attendance",
		Relation: "WiFi_Dataset", Action: Allow,
		Conditions: []ObjectCondition{
			{Attr: "wifiAP", Kind: CondKind(99)},
		},
	}
	if err := s.Insert(bad); err == nil {
		t.Fatal("Insert accepted an unserialisable condition")
	}
	if s.Len() != 0 {
		t.Errorf("store caches %d policies after failed insert, want 0", s.Len())
	}
	if _, ok := s.ByID(bad.ID); ok {
		t.Error("failed insert left the policy in the id index")
	}
	if got := s.PoliciesFor(Metadata{Querier: "Mallory", Purpose: "Attendance"}, "WiFi_Dataset", NoGroups); len(got) != 0 {
		t.Errorf("failed insert left %d policies applicable", len(got))
	}
	count := 0
	s.DB().MustTable(TableP).Scan(func(_ storage.RowID, _ storage.Row) bool {
		count++
		return true
	})
	if count != 0 {
		t.Errorf("failed insert left %d rP rows, want 0", count)
	}
}

// selfishGroups is a pathological Groups resolver: it violates the
// contract by returning the member itself and duplicate group names.
type selfishGroups struct{}

func (selfishGroups) GroupsOf(member string) []string {
	return []string{member, "faculty", "faculty"}
}

func TestPoliciesForDedupsPathologicalGroupResolvers(t *testing.T) {
	// A resolver that returns the querier itself or repeated groups must
	// not duplicate policy ids in the result: signatures are canonical
	// sorted id lists, and a duplicated id would split otherwise-identical
	// profiles and duplicate guard arms.
	s := newStore(t)
	direct := &Policy{Owner: 1, Querier: "Prof. Smith", Purpose: "Attendance",
		Relation: "WiFi_Dataset", Action: Allow}
	viaGroup := &Policy{Owner: 2, Querier: "faculty", Purpose: "Attendance",
		Relation: "WiFi_Dataset", Action: Allow}
	for _, p := range []*Policy{direct, viaGroup} {
		if err := s.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	got := s.PoliciesFor(Metadata{Querier: "Prof. Smith", Purpose: "Attendance"}, "WiFi_Dataset", selfishGroups{})
	if len(got) != 2 {
		t.Fatalf("PoliciesFor = %d policies, want 2 (no duplicates)", len(got))
	}
	seen := map[int64]bool{}
	for _, p := range got {
		if seen[p.ID] {
			t.Errorf("duplicate policy id %d in result", p.ID)
		}
		seen[p.ID] = true
	}
}
