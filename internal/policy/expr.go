package policy

import (
	"github.com/sieve-db/sieve/internal/sqlparser"
)

// Expr converts an object condition into a SQL expression over the table
// referenced as alias ("" for unqualified).
func (c ObjectCondition) Expr(alias string) sqlparser.Expr {
	col := sqlparser.Col(alias, c.Attr)
	switch c.Kind {
	case CondCompare:
		return &sqlparser.CompareExpr{Op: c.Op, L: col, R: sqlparser.Lit(c.Val)}
	case CondRange:
		// NULL bounds are unbounded sides (possible after guard merging).
		var lo, hi sqlparser.Expr
		if !c.Lo.IsNull() {
			lo = &sqlparser.CompareExpr{Op: c.LoOp, L: col, R: sqlparser.Lit(c.Lo)}
		}
		if !c.Hi.IsNull() {
			hi = &sqlparser.CompareExpr{Op: c.HiOp, L: col, R: sqlparser.Lit(c.Hi)}
		}
		if lo == nil && hi == nil {
			// A range unbounded on both sides still requires the attribute
			// to hold a value: Matches returns !v.IsNull(), every bounded
			// comparison is NULL (not TRUE) on a NULL attribute, and zone
			// refutation assumes range predicates never match NULL rows.
			// Emitting TRUE here (as this once did) let NULL-valued rows
			// through the inlined guard arm that the Δ path and the
			// zone-mapped scan both deny — the guard arm must behave as
			// FALSE for such rows in every evaluation path.
			return &sqlparser.IsNullExpr{E: col, Not: true}
		}
		// Closed two-sided ranges print as BETWEEN, as in the paper.
		if lo != nil && hi != nil && c.LoOp == sqlparser.CmpGe && c.HiOp == sqlparser.CmpLe {
			return &sqlparser.BetweenExpr{E: col, Lo: sqlparser.Lit(c.Lo), Hi: sqlparser.Lit(c.Hi)}
		}
		return sqlparser.And(lo, hi)
	case CondIn, CondNotIn:
		items := make([]sqlparser.Expr, len(c.Vals))
		for i, v := range c.Vals {
			items[i] = sqlparser.Lit(v)
		}
		return &sqlparser.InExpr{E: col, List: items, Not: c.Kind == CondNotIn}
	case CondSubquery:
		sub := sqlparser.MustParse(c.Subquery) // Validate checked parseability
		return &sqlparser.CompareExpr{Op: c.Op, L: col, R: &sqlparser.SubqueryExpr{Select: sub}}
	}
	return nil
}

// Expr builds the policy's full object-condition conjunction OC_l over the
// table referenced as alias, owner condition included.
func (p *Policy) Expr(alias string) sqlparser.Expr {
	exprs := make([]sqlparser.Expr, 0, len(p.Conditions)+1)
	for _, c := range p.AllConditions() {
		exprs = append(exprs, c.Expr(alias))
	}
	return sqlparser.And(exprs...)
}

// Expression builds the DNF policy expression E(P) = OC_1 ∨ … ∨ OC_|P|
// (§3.1). A nil result means the policy set is empty — under default-deny
// semantics the caller must treat that as FALSE, not as "no filter".
func Expression(ps []*Policy, alias string) sqlparser.Expr {
	exprs := make([]sqlparser.Expr, 0, len(ps))
	for _, p := range ps {
		exprs = append(exprs, p.Expr(alias))
	}
	return sqlparser.Or(exprs...)
}
