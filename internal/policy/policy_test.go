package policy

import (
	"strings"
	"testing"

	"github.com/sieve-db/sieve/internal/sqlparser"
	"github.com/sieve-db/sieve/internal/storage"
)

// johnPolicy is the paper's first sample policy (§3.1): John allows
// Prof. Smith access to his connectivity data 09:00–10:00 at AP 1200 for
// attendance control.
func johnPolicy() *Policy {
	return &Policy{
		Owner:    120,
		Querier:  "Prof. Smith",
		Purpose:  "Attendance",
		Relation: "WiFi_Dataset",
		Action:   Allow,
		Conditions: []ObjectCondition{
			RangeClosed("ts_time", storage.MustTime("09:00"), storage.MustTime("10:00")),
			Compare("wifiAP", sqlparser.CmpEq, storage.NewInt(1200)),
		},
	}
}

func wifiSchema() *storage.Schema {
	return storage.MustSchema(
		storage.Column{Name: "id", Type: storage.KindInt},
		storage.Column{Name: "owner", Type: storage.KindInt},
		storage.Column{Name: "wifiAP", Type: storage.KindInt},
		storage.Column{Name: "ts_time", Type: storage.KindTime},
		storage.Column{Name: "ts_date", Type: storage.KindDate},
	)
}

func wifiRow(owner, ap int64, tm string) storage.Row {
	return storage.Row{
		storage.NewInt(1), storage.NewInt(owner), storage.NewInt(ap),
		storage.MustTime(tm), storage.NewDate(10),
	}
}

func TestPolicyValidate(t *testing.T) {
	p := johnPolicy()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
	bad := []*Policy{
		{Querier: "q", Purpose: "p", Action: Allow},                      // missing relation
		{Relation: "r", Purpose: "p", Action: Allow},                     // missing querier
		{Relation: "r", Querier: "q", Action: Allow},                     // missing purpose
		{Relation: "r", Querier: "q", Purpose: "p", Action: Action("x")}, // bad action
		{Relation: "r", Querier: "q", Purpose: "p", Action: Allow,
			Conditions: []ObjectCondition{Compare(OwnerAttr, sqlparser.CmpEq, storage.NewInt(1))}}, // explicit owner
		{Relation: "r", Querier: "q", Purpose: "p", Action: Allow,
			Conditions: []ObjectCondition{In("a")}}, // empty IN
		{Relation: "r", Querier: "q", Purpose: "p", Action: Allow,
			Conditions: []ObjectCondition{DerivedValue("a", sqlparser.CmpEq, "NOT SQL")}}, // bad subquery
		{Relation: "r", Querier: "q", Purpose: "p", Action: Allow,
			Conditions: []ObjectCondition{{Attr: "a", Kind: CondRange, LoOp: sqlparser.CmpEq}}}, // bad range ops
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
}

func TestObjectConditionMatches(t *testing.T) {
	cases := []struct {
		cond ObjectCondition
		v    storage.Value
		want bool
	}{
		{Compare("x", sqlparser.CmpEq, storage.NewInt(5)), storage.NewInt(5), true},
		{Compare("x", sqlparser.CmpEq, storage.NewInt(5)), storage.NewInt(6), false},
		{Compare("x", sqlparser.CmpNe, storage.NewInt(5)), storage.NewInt(6), true},
		{Compare("x", sqlparser.CmpLt, storage.NewInt(5)), storage.NewInt(4), true},
		{Compare("x", sqlparser.CmpGe, storage.NewInt(5)), storage.NewInt(5), true},
		{Compare("x", sqlparser.CmpEq, storage.NewInt(5)), storage.Null, false},
		{RangeClosed("x", storage.NewInt(1), storage.NewInt(5)), storage.NewInt(3), true},
		{RangeClosed("x", storage.NewInt(1), storage.NewInt(5)), storage.NewInt(6), false},
		{RangeClosed("x", storage.NewInt(1), storage.NewInt(5)), storage.NewInt(1), true},
		{In("x", storage.NewInt(1), storage.NewInt(2)), storage.NewInt(2), true},
		{In("x", storage.NewInt(1), storage.NewInt(2)), storage.NewInt(3), false},
		{NotIn("x", storage.NewInt(1)), storage.NewInt(2), true},
		{NotIn("x", storage.NewInt(1)), storage.NewInt(1), false},
		{NotIn("x", storage.NewInt(1)), storage.Null, false},
	}
	for i, c := range cases {
		got, err := c.cond.Matches(c.v)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.want {
			t.Errorf("case %d: Matches(%v) = %v, want %v (%s)", i, c.v, got, c.want, c.cond)
		}
	}
	sub := DerivedValue("x", sqlparser.CmpEq, "SELECT a FROM t")
	if _, err := sub.Matches(storage.NewInt(1)); err == nil {
		t.Error("subquery condition must refuse value-only evaluation")
	}
}

func TestAppliesToAndFilter(t *testing.T) {
	p := johnPolicy()
	groups := StaticGroups{"Prof. Smith": {"faculty"}}
	if !p.AppliesTo(Metadata{Querier: "Prof. Smith", Purpose: "Attendance"}, NoGroups) {
		t.Error("direct querier must apply")
	}
	if p.AppliesTo(Metadata{Querier: "Prof. Smith", Purpose: "Marketing"}, NoGroups) {
		t.Error("wrong purpose must not apply")
	}
	if p.AppliesTo(Metadata{Querier: "Mallory", Purpose: "Attendance"}, NoGroups) {
		t.Error("wrong querier must not apply")
	}
	grp := johnPolicy()
	grp.Querier = "faculty"
	if !grp.AppliesTo(Metadata{Querier: "Prof. Smith", Purpose: "Attendance"}, groups) {
		t.Error("group policy must apply via membership")
	}
	anyP := johnPolicy()
	anyP.Purpose = AnyPurpose
	if !anyP.AppliesTo(Metadata{Querier: "Prof. Smith", Purpose: "Whatever"}, NoGroups) {
		t.Error("any-purpose policy must apply")
	}

	ps := []*Policy{p, grp, anyP}
	got := Filter(ps, Metadata{Querier: "Prof. Smith", Purpose: "Attendance"}, "WiFi_Dataset", groups)
	if len(got) != 3 {
		t.Errorf("Filter = %d policies, want 3", len(got))
	}
	if got2 := Filter(ps, Metadata{Querier: "Prof. Smith", Purpose: "Attendance"}, "Other", groups); len(got2) != 0 {
		t.Errorf("Filter on other relation = %d, want 0", len(got2))
	}
}

func TestPolicyExprShape(t *testing.T) {
	p := johnPolicy()
	p.ID = 1
	e := p.Expr("W")
	text := sqlparser.PrintExpr(e)
	for _, want := range []string{"W.owner = 120", "BETWEEN TIME '09:00:00' AND TIME '10:00:00'", "W.wifiAP = 1200"} {
		if !strings.Contains(text, want) {
			t.Errorf("Expr = %q, missing %q", text, want)
		}
	}
	// The expression must parse back.
	if _, err := sqlparser.ParseExpr(text); err != nil {
		t.Fatalf("Expr does not re-parse: %v", err)
	}
	if Expression(nil, "W") != nil {
		t.Error("empty Expression must be nil (caller treats as FALSE)")
	}
	two := Expression([]*Policy{p, p}, "W")
	if len(sqlparser.Disjuncts(two)) != 2 {
		t.Error("Expression must OR policies")
	}
}

func TestCompiledSetEval(t *testing.T) {
	p1 := johnPolicy() // owner 120, AP 1200, 9-10
	p2 := johnPolicy()
	p2.Owner = 121
	p2.Conditions = nil // owner 121, unconditional
	cs, err := CompileSet([]*Policy{p1, p2}, wifiSchema())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		row     storage.Row
		want    bool
		checked int
	}{
		{wifiRow(120, 1200, "09:30"), true, 1},
		{wifiRow(120, 1200, "11:00"), false, 2}, // fails p1 (time), fails p2 (owner)
		{wifiRow(121, 999, "23:00"), true, 2},   // p1 fails owner, p2 matches
		{wifiRow(999, 1200, "09:30"), false, 2},
	}
	for i, c := range cases {
		got, checked, err := cs.EvalFirstMatch(c.row, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want || checked != c.checked {
			t.Errorf("case %d: EvalFirstMatch = (%v,%d), want (%v,%d)", i, got, checked, c.want, c.checked)
		}
	}
	// Owner-filtered evaluation (the Δ path) checks fewer policies.
	got, checked, err := cs.EvalOwnerFirstMatch(121, wifiRow(121, 999, "23:00"), nil)
	if err != nil || !got || checked != 1 {
		t.Errorf("EvalOwnerFirstMatch = (%v,%d,%v), want (true,1,nil)", got, checked, err)
	}
	if got, checked, _ := cs.EvalOwnerFirstMatch(555, wifiRow(555, 1200, "09:30"), nil); got || checked != 0 {
		t.Errorf("unknown owner: (%v,%d), want (false,0)", got, checked)
	}
	if cs.OwnersCovered() != 2 {
		t.Errorf("OwnersCovered = %d", cs.OwnersCovered())
	}
}

func TestConditionsOnMissingAttributesAreIgnored(t *testing.T) {
	p := johnPolicy()
	p.Conditions = append(p.Conditions, Compare("temperature", sqlparser.CmpGt, storage.NewInt(100)))
	cs, err := CompileSet([]*Policy{p}, wifiSchema())
	if err != nil {
		t.Fatal(err)
	}
	// temperature is not in the schema: the condition must not block (§3.1).
	got, _, err := cs.EvalFirstMatch(wifiRow(120, 1200, "09:30"), nil)
	if err != nil || !got {
		t.Errorf("missing-attribute condition blocked the tuple: %v %v", got, err)
	}
}

func TestSubqueryConditionRequiresEvaluator(t *testing.T) {
	p := johnPolicy()
	p.Conditions = []ObjectCondition{DerivedValue("wifiAP", sqlparser.CmpEq, "SELECT wifiAP FROM w2")}
	cs, err := CompileSet([]*Policy{p}, wifiSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cs.EvalFirstMatch(wifiRow(120, 1200, "09:30"), nil); err == nil {
		t.Error("subquery condition without evaluator must error")
	}
	called := false
	sub := func(cond ObjectCondition, row storage.Row) (bool, error) {
		called = true
		return true, nil
	}
	got, _, err := cs.EvalFirstMatch(wifiRow(120, 1200, "09:30"), sub)
	if err != nil || !got || !called {
		t.Errorf("subquery evaluator path failed: %v %v called=%v", got, err, called)
	}
}

func TestFactorDeny(t *testing.T) {
	allow := johnPolicy()
	allow.Conditions = nil // allow everything of owner 120
	deny := &Policy{
		Owner: 120, Querier: AnyQuerier, Purpose: AnyPurpose,
		Relation: "WiFi_Dataset", Action: Deny,
		Conditions: []ObjectCondition{Compare("wifiAP", sqlparser.CmpEq, storage.NewInt(666))},
	}
	out := FactorDeny([]*Policy{allow}, []*Policy{deny})
	if len(out) != 1 {
		t.Fatalf("factored set size = %d, want 1", len(out))
	}
	cs, err := CompileSet(out, wifiSchema())
	if err != nil {
		t.Fatal(err)
	}
	if ok, _, _ := cs.EvalFirstMatch(wifiRow(120, 666, "09:30"), nil); ok {
		t.Error("denied AP must not match after factoring")
	}
	if ok, _, _ := cs.EvalFirstMatch(wifiRow(120, 1200, "09:30"), nil); !ok {
		t.Error("non-denied AP must still match")
	}
}

func TestFactorDenyRangeSplits(t *testing.T) {
	allow := johnPolicy()
	allow.Conditions = nil
	deny := &Policy{
		Owner: 120, Querier: "Prof. Smith", Purpose: "Attendance",
		Relation: "WiFi_Dataset", Action: Deny,
		Conditions: []ObjectCondition{RangeClosed("ts_time", storage.MustTime("12:00"), storage.MustTime("13:00"))},
	}
	out := FactorDeny([]*Policy{allow}, []*Policy{deny})
	if len(out) != 2 {
		t.Fatalf("range negation must split into 2 policies, got %d", len(out))
	}
	cs, _ := CompileSet(out, wifiSchema())
	for _, c := range []struct {
		tm   string
		want bool
	}{{"11:59", true}, {"12:00", false}, {"12:30", false}, {"13:00", false}, {"13:01", true}} {
		if ok, _, _ := cs.EvalFirstMatch(wifiRow(120, 1, c.tm), nil); ok != c.want {
			t.Errorf("time %s: match = %v, want %v", c.tm, ok, c.want)
		}
	}
}

func TestFactorDenyTotalDenyRemovesAllow(t *testing.T) {
	allow := johnPolicy()
	deny := &Policy{Owner: 120, Querier: AnyQuerier, Purpose: AnyPurpose,
		Relation: "WiFi_Dataset", Action: Deny}
	out := FactorDeny([]*Policy{allow}, []*Policy{deny})
	if len(out) != 0 {
		t.Fatalf("total deny must remove the allow, got %d policies", len(out))
	}
}

func TestFactorDenyInapplicableDenyLeavesAllow(t *testing.T) {
	allow := johnPolicy()
	otherOwner := &Policy{Owner: 999, Querier: AnyQuerier, Purpose: AnyPurpose,
		Relation: "WiFi_Dataset", Action: Deny}
	otherQuerier := &Policy{Owner: 120, Querier: "Mallory", Purpose: AnyPurpose,
		Relation: "WiFi_Dataset", Action: Deny}
	out := FactorDeny([]*Policy{allow}, []*Policy{otherOwner, otherQuerier})
	if len(out) != 1 || out[0] != allow {
		t.Fatalf("inapplicable denies must leave the allow untouched: %v", out)
	}
}

func TestPolicyStringMentionsParts(t *testing.T) {
	p := johnPolicy()
	p.ID = 7
	s := p.String()
	for _, want := range []string{"7", "Prof. Smith", "Attendance", "allow", "WiFi_Dataset"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
