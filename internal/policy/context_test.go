package policy

import (
	"testing"
)

// §3.1: "Other pieces of querier context (such as the IP of the machine
// from where the querier posed the query, or the time of the day) can
// easily be added as querier conditions."

func contextPolicy() *Policy {
	p := johnPolicy()
	p.ExtraQuerier = []QuerierCondition{
		{Attr: "network", Val: "campus"},
	}
	return p
}

func TestExtraQuerierConditionsMatch(t *testing.T) {
	p := contextPolicy()
	base := Metadata{Querier: "Prof. Smith", Purpose: "Attendance"}

	if p.AppliesTo(base, NoGroups) {
		t.Error("policy with context condition must not match metadata without context")
	}
	withCtx := base
	withCtx.Context = map[string]string{"network": "campus"}
	if !p.AppliesTo(withCtx, NoGroups) {
		t.Error("matching context must apply")
	}
	wrong := base
	wrong.Context = map[string]string{"network": "public"}
	if p.AppliesTo(wrong, NoGroups) {
		t.Error("wrong context value must not apply")
	}
	extra := base
	extra.Context = map[string]string{"network": "campus", "device": "laptop"}
	if !p.AppliesTo(extra, NoGroups) {
		t.Error("extra unrelated context must not block")
	}
}

func TestExtraQuerierMultipleConditionsAreConjunctive(t *testing.T) {
	p := contextPolicy()
	p.ExtraQuerier = append(p.ExtraQuerier, QuerierCondition{Attr: "daytime", Val: "office-hours"})
	qm := Metadata{
		Querier: "Prof. Smith", Purpose: "Attendance",
		Context: map[string]string{"network": "campus"},
	}
	if p.AppliesTo(qm, NoGroups) {
		t.Error("partially satisfied querier conditions must not apply")
	}
	qm.Context["daytime"] = "office-hours"
	if !p.AppliesTo(qm, NoGroups) {
		t.Error("fully satisfied querier conditions must apply")
	}
}

func TestStoreFiltersByContext(t *testing.T) {
	s := newStore(t)
	plain := johnPolicy()
	ctx := contextPolicy()
	if err := s.Insert(plain); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert(ctx); err != nil {
		t.Fatal(err)
	}
	qm := Metadata{Querier: "Prof. Smith", Purpose: "Attendance"}
	if got := s.PoliciesFor(qm, "WiFi_Dataset", NoGroups); len(got) != 1 {
		t.Fatalf("without context: %d policies, want 1", len(got))
	}
	qm.Context = map[string]string{"network": "campus"}
	if got := s.PoliciesFor(qm, "WiFi_Dataset", NoGroups); len(got) != 2 {
		t.Fatalf("with context: %d policies, want 2", len(got))
	}
}
