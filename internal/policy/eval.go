package policy

import (
	"fmt"

	"github.com/sieve-db/sieve/internal/sqlparser"
	"github.com/sieve-db/sieve/internal/storage"
)

// Matches evaluates the condition against a tuple value. CondSubquery
// conditions need a query engine and return an error here; callers route
// them through a SubqueryEvaluator.
func (c ObjectCondition) Matches(v storage.Value) (bool, error) {
	switch c.Kind {
	case CondCompare:
		return applyCmp(c.Op, v, c.Val), nil
	case CondRange:
		// NULL bounds are unbounded sides (possible after guard merging).
		if !c.Lo.IsNull() && !applyCmp(c.LoOp, v, c.Lo) {
			return false, nil
		}
		if !c.Hi.IsNull() && !applyCmp(c.HiOp, v, c.Hi) {
			return false, nil
		}
		return !v.IsNull(), nil
	case CondIn:
		for _, m := range c.Vals {
			if storage.Equal(v, m) {
				return true, nil
			}
		}
		return false, nil
	case CondNotIn:
		if v.IsNull() {
			return false, nil
		}
		for _, m := range c.Vals {
			if m.IsNull() || storage.Equal(v, m) {
				return false, nil
			}
		}
		return true, nil
	case CondSubquery:
		return false, fmt.Errorf("policy: derived-value condition on %s requires engine evaluation", c.Attr)
	}
	return false, fmt.Errorf("policy: unknown condition kind %d", c.Kind)
}

func applyCmp(op sqlparser.CmpOp, l, r storage.Value) bool {
	cmp, ok := storage.Compare(l, r)
	if !ok {
		return false // NULL or incomparable never satisfies (§3.1 eval)
	}
	switch op {
	case sqlparser.CmpEq:
		return cmp == 0
	case sqlparser.CmpNe:
		return cmp != 0
	case sqlparser.CmpLt:
		return cmp < 0
	case sqlparser.CmpLe:
		return cmp <= 0
	case sqlparser.CmpGt:
		return cmp > 0
	case sqlparser.CmpGe:
		return cmp >= 0
	}
	return false
}

// SubqueryEvaluator evaluates a derived-value condition against a tuple
// using a query engine; the core package supplies one backed by the
// embedded engine.
type SubqueryEvaluator func(cond ObjectCondition, row storage.Row) (bool, error)

// ErrNoSubqueryEvaluator is returned when a derived-value condition is met
// without an engine-backed evaluator.
var ErrNoSubqueryEvaluator = fmt.Errorf("policy: no subquery evaluator provided")

// compiledCheck binds a condition to a column offset in the relation
// schema. Conditions on attributes absent from the schema are dropped at
// compile time, implementing the paper's "tt.attr = oc.attr ⇒ …" semantics
// (conditions on other attributes do not constrain the tuple).
type compiledCheck struct {
	col  int
	cond ObjectCondition
}

// CompiledSet is a policy set compiled against one relation schema for fast
// per-tuple evaluation: the hot path of the Δ operator and of the baseline
// UDF, and the ground-truth evaluator used by tests.
type CompiledSet struct {
	Policies []*Policy
	checks   [][]compiledCheck
	byOwner  map[int64][]int
}

// CompileSet compiles policies for rows laid out as schema.
func CompileSet(ps []*Policy, schema *storage.Schema) (*CompiledSet, error) {
	cs := &CompiledSet{
		Policies: ps,
		checks:   make([][]compiledCheck, len(ps)),
		byOwner:  make(map[int64][]int),
	}
	for i, p := range ps {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		var row []compiledCheck
		for _, c := range p.AllConditions() {
			col := schema.ColumnIndex(c.Attr)
			if col < 0 {
				continue
			}
			row = append(row, compiledCheck{col: col, cond: c})
		}
		cs.checks[i] = row
		cs.byOwner[p.Owner] = append(cs.byOwner[p.Owner], i)
	}
	return cs, nil
}

// HasSubqueryConditions reports whether any compiled policy carries a
// derived-value condition, i.e. whether evaluation can ever need a
// SubqueryEvaluator. Hot paths use it to skip building one.
func (cs *CompiledSet) HasSubqueryConditions() bool {
	for _, row := range cs.checks {
		for _, ch := range row {
			if ch.cond.Kind == CondSubquery {
				return true
			}
		}
	}
	return false
}

// evalPolicy evaluates one compiled policy against a row.
func (cs *CompiledSet) evalPolicy(i int, row storage.Row, sub SubqueryEvaluator) (bool, error) {
	for _, ch := range cs.checks[i] {
		if ch.cond.Kind == CondSubquery {
			if sub == nil {
				return false, ErrNoSubqueryEvaluator
			}
			ok, err := sub(ch.cond, row)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
			continue
		}
		ok, err := ch.cond.Matches(row[ch.col])
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// EvalFirstMatch evaluates the disjunction of all policies against a tuple,
// stopping at the first satisfied policy (§4 footnote 4). checked reports
// how many policies were evaluated — the experimental α statistic.
func (cs *CompiledSet) EvalFirstMatch(row storage.Row, sub SubqueryEvaluator) (matched bool, checked int, err error) {
	for i := range cs.Policies {
		checked++
		ok, err := cs.evalPolicy(i, row, sub)
		if err != nil {
			return false, checked, err
		}
		if ok {
			return true, checked, nil
		}
	}
	return false, checked, nil
}

// EvalOwnerFirstMatch is EvalFirstMatch restricted to policies whose owner
// matches the tuple's owner — the Δ operator's context-based filtering
// (§3.2): the tuple's owner attribute prunes the policies to check.
func (cs *CompiledSet) EvalOwnerFirstMatch(owner int64, row storage.Row, sub SubqueryEvaluator) (matched bool, checked int, err error) {
	for _, i := range cs.byOwner[owner] {
		checked++
		ok, err := cs.evalPolicy(i, row, sub)
		if err != nil {
			return false, checked, err
		}
		if ok {
			return true, checked, nil
		}
	}
	return false, checked, nil
}

// OwnersCovered returns the number of distinct owners with at least one
// policy in the set.
func (cs *CompiledSet) OwnersCovered() int { return len(cs.byOwner) }
