package loadgen

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/sieve-db/sieve/client"
	"github.com/sieve-db/sieve/internal/backend"
	"github.com/sieve-db/sieve/internal/backend/backendtest"
	"github.com/sieve-db/sieve/internal/core"
	"github.com/sieve-db/sieve/internal/policy"
	"github.com/sieve-db/sieve/internal/storage"
)

// stmtCache shares prepared statements across workers: core.Stmt is
// concurrency-safe and caches one plan per guard signature, so hundreds
// of workers hitting the same SQL exercise the shared-plan path.
type stmtCache struct {
	m  *core.Middleware
	mu sync.Mutex
	st map[string]*core.Stmt
}

func (c *stmtCache) get(sql string) (*core.Stmt, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.st[sql]; ok {
		return st, nil
	}
	st, err := c.m.Prepare(sql)
	if err != nil {
		return nil, err
	}
	c.st[sql] = st
	return st, nil
}

// inprocExec runs ops on an in-process core.Session. The fake-backend op
// ships the rewritten SQL through a per-worker recording fake driver
// seeded with the embedded baseline, covering encode → SQL → decode.
type inprocExec struct {
	sc    *Scenario
	sess  *core.Session
	ck    *Checker
	limit int
	stmts *stmtCache
	b     backend.Backend
	fake  *backendtest.Fake
}

// NewInProcFactory builds executors running directly on the scenario's
// middleware.
func NewInProcFactory(sc *Scenario, cfg Config) ExecutorFactory {
	stmts := &stmtCache{m: sc.M, st: map[string]*core.Stmt{}}
	limit := cfg.StreamLimit
	if limit <= 0 {
		limit = 8
	}
	return func(worker int, querier string, ck *Checker) (Executor, error) {
		b, fake, err := backend.For("fake-mysql", nil)
		if err != nil {
			return nil, err
		}
		return &inprocExec{
			sc:    sc,
			sess:  sc.M.NewSession(policy.Metadata{Querier: querier, Purpose: sc.Purpose}),
			ck:    ck,
			limit: limit,
			stmts: stmts,
			b:     b,
			fake:  fake,
		}, nil
	}
}

func (e *inprocExec) Close() { _ = e.b.Close() }

func (e *inprocExec) Run(ctx context.Context, kind OpKind, q Query) ([]storage.Row, []string, error) {
	switch kind {
	case OpStream:
		rows, err := e.sess.Query(ctx, q.SQL)
		if err != nil {
			return nil, nil, err
		}
		var out []storage.Row
		for len(out) < e.limit && rows.Next() {
			r := rows.Row()
			cp := make(storage.Row, len(r))
			copy(cp, r)
			out = append(out, cp)
		}
		if err := rows.Err(); err != nil {
			rows.Close()
			return nil, nil, err
		}
		cols := rows.Columns()
		rows.Close()
		return out, cols, nil
	case OpPrepared:
		st, err := e.stmts.get(q.SQL)
		if err != nil {
			return nil, nil, err
		}
		res, err := st.Execute(ctx, e.sess)
		if err != nil {
			return nil, nil, err
		}
		return res.Rows, res.Columns, nil
	case OpBackend:
		clock0 := e.ck.Clock()
		base, err := e.sess.Execute(ctx, q.SQL)
		if err != nil {
			return nil, nil, err
		}
		em, err := e.sess.RewriteSQL(q.SQL, e.b.Dialect())
		if err != nil {
			return nil, nil, err
		}
		e.fake.Push(backendtest.ResultFromRows(base.Columns, base.Rows))
		n, err := e.b.Exec(ctx, em, nil)
		if err != nil {
			return nil, nil, err
		}
		// With no churn tick across the op both rewrites saw the same
		// policy world, so the decoded count must match the baseline.
		if e.ck.Clock() == clock0 && n != int64(len(base.Rows)) {
			e.ck.BackendMismatch(e.sess.Metadata().Querier, q, n, int64(len(base.Rows)))
		}
		return base.Rows, base.Columns, nil
	default: // OpExhaust
		res, err := e.sess.Execute(ctx, q.SQL)
		if err != nil {
			return nil, nil, err
		}
		return res.Rows, res.Columns, nil
	}
}

// wireExec runs ops through the sieve-server HTTP protocol with one
// client session per worker.
type wireExec struct {
	sess  *client.Session
	limit int
	mu    sync.Mutex
	stmts map[string]*client.Stmt
}

// NewWireFactory builds executors that talk to a sieve-server at baseURL
// using demo tokens for the scenario's queriers.
func NewWireFactory(baseURL string, sc *Scenario, cfg Config) ExecutorFactory {
	limit := cfg.StreamLimit
	if limit <= 0 {
		limit = 8
	}
	return func(worker int, querier string, ck *Checker) (Executor, error) {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		sess, err := client.New(baseURL, "demo:"+querier+"|"+sc.Purpose).OpenSession(ctx, "")
		if err != nil {
			return nil, fmt.Errorf("open wire session for %s: %w", querier, err)
		}
		return &wireExec{sess: sess, limit: limit, stmts: map[string]*client.Stmt{}}, nil
	}
}

func (e *wireExec) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = e.sess.Close(ctx)
}

// drain reads up to limit rows (limit < 0 = all) and converts them back
// to engine values for the checker.
func drain(rows *client.Rows, limit int) ([]storage.Row, []string, error) {
	var out []storage.Row
	for (limit < 0 || len(out) < limit) && rows.Next() {
		r := rows.Row()
		conv := make(storage.Row, len(r))
		for i, a := range r {
			conv[i] = valueFromWire(a)
		}
		out = append(out, conv)
	}
	if err := rows.Err(); err != nil {
		_ = rows.Close()
		return nil, nil, err
	}
	cols := rows.Columns()
	_ = rows.Close()
	return out, cols, nil
}

// valueFromWire is the inverse of client.FromValue.
func valueFromWire(a any) storage.Value {
	switch x := a.(type) {
	case nil:
		return storage.Null
	case int64:
		return storage.NewInt(x)
	case float64:
		return storage.NewFloat(x)
	case string:
		return storage.NewString(x)
	case bool:
		return storage.NewBool(x)
	case client.TimeOfDay:
		return storage.NewTime(int64(x))
	case client.Date:
		return storage.NewDate(int64(x))
	}
	return storage.Null
}

func (e *wireExec) Run(ctx context.Context, kind OpKind, q Query) ([]storage.Row, []string, error) {
	switch kind {
	case OpStream:
		rows, err := e.sess.Query(ctx, q.SQL)
		if err != nil {
			return nil, nil, err
		}
		return drain(rows, e.limit)
	case OpPrepared:
		e.mu.Lock()
		st, ok := e.stmts[q.SQL]
		e.mu.Unlock()
		if !ok {
			var err error
			st, err = e.sess.Prepare(ctx, q.SQL)
			if err != nil {
				return nil, nil, err
			}
			e.mu.Lock()
			e.stmts[q.SQL] = st
			e.mu.Unlock()
		}
		rows, err := st.Query(ctx)
		if err != nil {
			return nil, nil, err
		}
		return drain(rows, -1)
	case OpBackend:
		// Over the wire the "ship to a backend" shape is the rewrite
		// endpoint: emission plus bound args, no local rows to check.
		if _, _, err := e.sess.Rewrite(ctx, q.SQL, "mysql"); err != nil {
			return nil, nil, err
		}
		return nil, nil, nil
	default: // OpExhaust
		rows, err := e.sess.Query(ctx, q.SQL)
		if err != nil {
			return nil, nil, err
		}
		return drain(rows, -1)
	}
}
