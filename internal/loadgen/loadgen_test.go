package loadgen_test

import (
	"context"
	"testing"

	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/experiment"
	"github.com/sieve-db/sieve/internal/loadgen"
	"github.com/sieve-db/sieve/internal/storage"
	"github.com/sieve-db/sieve/internal/workload"
)

// TestTrafficSoakHospital is the tier-1 concurrency soak: 16 queriers
// hammer the hospital workload (deepest group hierarchy) through the
// mixed op workload while churn adds and revokes policies, and the live
// invariant checker must stay silent. Run it with -race -cpu=1,4 for the
// full effect; plain go test ./... still exercises the whole path.
func TestTrafficSoakHospital(t *testing.T) {
	sc, err := experiment.TrafficScenario(experiment.TestConfig(), "hospital")
	if err != nil {
		t.Fatal(err)
	}
	cfg := loadgen.Config{
		Seed:        1,
		Workers:     16,
		Ops:         8,
		StreamLimit: 6,
		ZipfQuerier: 1.3,
		ZipfQuery:   1.3,
		Mix:         loadgen.DefaultMix(),
		Churn:       true,
		DenyEvery:   4,
	}
	res, err := loadgen.Run(context.Background(), sc, cfg, loadgen.NewInProcFactory(sc, cfg))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("soak failed: %d errors %v, violations %+v %v",
			res.Errors, res.ErrorSamples, res.Violations, res.ViolationSamples)
	}
	if res.Ops <= 0 || res.Rows <= 0 {
		t.Fatalf("soak did no work: ops=%d rows=%d", res.Ops, res.Rows)
	}
	if res.RowsChecked <= 0 {
		t.Fatal("invariant checker saw no rows")
	}
	if res.ChurnAdds <= 0 || res.ChurnRevokes <= 0 {
		t.Fatalf("churn did not run: adds=%d revokes=%d", res.ChurnAdds, res.ChurnRevokes)
	}
	if !(res.P50us <= res.P95us && res.P95us <= res.P99us) {
		t.Fatalf("percentiles not monotone: %v %v %v", res.P50us, res.P95us, res.P99us)
	}
}

// vitalsRow fabricates one row of the vitals relation for owner.
func vitalsRow(owner int64) storage.Row {
	return storage.Row{
		storage.NewInt(1), storage.NewInt(0), storage.NewInt(owner),
		storage.NewInt(80), storage.NewTime(10 * 3600), storage.NewDate(10),
	}
}

// TestCheckerDetectsViolations feeds the checker rows it must reject —
// the soak proves silence on legal traffic, this proves the alarm works.
func TestCheckerDetectsViolations(t *testing.T) {
	sc, err := experiment.TrafficScenario(experiment.TestConfig(), "hospital")
	if err != nil {
		t.Fatal(err)
	}
	ck, err := loadgen.NewChecker(sc, 10)
	if err != nil {
		t.Fatal(err)
	}
	q := loadgen.Query{Name: "probe", RowCheck: true}
	cols := make([]string, sc.Schema.Len())
	owner := sc.ChurnOwners[0]

	// A live churn grant justifies the churn querier's row.
	e := ck.WillGrant(sc.ChurnQuerier, owner)
	ck.CheckRows(sc.ChurnQuerier, ck.Clock(), q, []storage.Row{vitalsRow(owner)}, cols)
	if v, _ := ck.Violations(); v.Total() != 0 {
		t.Fatalf("live grant flagged: %+v", v)
	}

	// After revocation a query that starts later must not see the owner.
	ck.DidRevoke(e)
	ck.CheckRows(sc.ChurnQuerier, ck.Clock(), q, []storage.Row{vitalsRow(owner)}, cols)
	if v, _ := ck.Violations(); v.RevokedRows != 1 {
		t.Fatalf("revoked grant resurfacing not flagged: %+v", v)
	}

	// An owner never granted at all is unjustified.
	ck.CheckRows(sc.ChurnQuerier, ck.Clock(), q, []storage.Row{vitalsRow(owner + 1)}, cols)
	if v, _ := ck.Violations(); v.UnjustifiedRows != 1 {
		t.Fatalf("unjustified row not flagged: %+v", v)
	}

	// Any row reaching a default-deny querier is a leak.
	ck.CheckRows(sc.DenyQueriers[0], ck.Clock(), q, []storage.Row{vitalsRow(owner)}, cols)
	if v, _ := ck.Violations(); v.DefaultDenyRows != 1 {
		t.Fatalf("default-deny leak not flagged: %+v", v)
	}

	// Backend parity breaches are counted and sampled.
	ck.BackendMismatch("x", q, 3, 5)
	v, samples := ck.Violations()
	if v.BackendParity != 1 || v.Total() != 4 || len(samples) != 4 {
		t.Fatalf("violation bookkeeping off: %+v, %d samples", v, len(samples))
	}
}

// TestCheckerQueryWindow pins the two-legal-worlds window semantics: a
// grant justifies a row only for queries whose lifetime overlaps it.
func TestCheckerQueryWindow(t *testing.T) {
	sc, err := experiment.TrafficScenario(experiment.TestConfig(), "hospital")
	if err != nil {
		t.Fatal(err)
	}
	ck, err := loadgen.NewChecker(sc, 10)
	if err != nil {
		t.Fatal(err)
	}
	q := loadgen.Query{Name: "probe", RowCheck: true}
	cols := make([]string, sc.Schema.Len())
	owner := sc.ChurnOwners[0]
	group := sc.ChurnGroups[0] // staff of ward 0-0 are members

	// Find a querier that is a member of the churn group.
	var member string
	for _, s := range sc.Queriers {
		for _, g := range sc.Groups.GroupsOf(s) {
			if g == group {
				member = s
				break
			}
		}
		if member != "" {
			break
		}
	}
	if member == "" {
		t.Fatalf("no scenario querier is a member of %s", group)
	}

	// Query started before the grant died: overlap, row is legal even
	// though the grant went to the group, not the member directly.
	qStart := ck.Clock()
	e := ck.WillGrant(group, owner)
	ck.DidRevoke(e)
	ck.CheckRows(member, qStart, q, []storage.Row{vitalsRow(owner)}, cols)
	if v, _ := ck.Violations(); v.Total() != 0 {
		t.Fatalf("overlapping group grant flagged: %+v", v)
	}

	// Query started after the death stamp: no overlap, row is a breach.
	ck.CheckRows(member, ck.Clock(), q, []storage.Row{vitalsRow(owner)}, cols)
	if v, _ := ck.Violations(); v.RevokedRows != 1 {
		t.Fatalf("post-revocation window not enforced: %+v", v)
	}
}

// TestHospitalHierarchy pins the deep group closure the hospital
// workload exists to exercise: staff resolve through ward, department,
// role, and hospital-wide principals.
func TestHospitalHierarchy(t *testing.T) {
	h, err := workload.BuildHospital(workload.TestHospitalConfig(), engine.MySQL())
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Staff) == 0 || len(h.Patients) == 0 {
		t.Fatal("empty hospital")
	}
	s := h.Staff[0]
	groups := h.Groups().GroupsOf(s.Querier())
	want := map[string]bool{
		workload.WardGroup(s.Dept, s.Ward):     false,
		workload.DeptGroup(s.Dept):             false,
		workload.HospitalGroup:                 false,
		workload.RoleGroup(s.Role):             false,
		workload.DeptRoleGroup(s.Dept, s.Role): false,
	}
	for _, g := range groups {
		if _, ok := want[g]; ok {
			want[g] = true
		}
	}
	for g, seen := range want {
		if !seen {
			t.Errorf("staff %s missing group %s (got %v)", s.Querier(), g, groups)
		}
	}
}
