// Package loadgen drives SIEVE under closed-loop concurrent load: many
// querier goroutines with Zipf-skewed querier and query selection run a
// configurable mix of streaming early-Close, exhaustive, prepared-
// statement, and fake-backend-shipped queries against one workload
// scenario, while a churn goroutine adds and revokes policies mid-flight.
// An embedded Checker holds every observed row to the enforcement
// invariants live (two-legal-worlds under churn, default-deny emptiness,
// no revocation resurfacing), which makes the generator double as the
// repo's largest concurrency test. The traffic experiment wires the
// campus, mall, and hospital workloads through it, in process and over
// the sieve-server wire path.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sieve-db/sieve/internal/core"
	"github.com/sieve-db/sieve/internal/policy"
	"github.com/sieve-db/sieve/internal/storage"
)

// Query is one entry of a scenario's query pool.
type Query struct {
	Name string
	SQL  string
	// RowCheck marks a SELECT * over the protected relation: the checker
	// can justify its result rows policy by policy. Other shapes still
	// count toward load and the default-deny emptiness check.
	RowCheck bool
}

// Scenario binds one workload to the harness.
type Scenario struct {
	Name     string
	M        *core.Middleware
	Relation string
	// Schema is the protected relation's row layout; RowCheck queries
	// return rows in this shape.
	Schema  *storage.Schema
	Purpose string
	// Queriers are the policy-holding identities workers run as,
	// Zipf-ranked: rank 0 is hit most often.
	Queriers []string
	// DenyQueriers hold no policies and must always see empty results.
	DenyQueriers []string
	// ChurnQuerier is a dedicated identity holding no static policies;
	// the churn goroutine grants and revokes its access mid-run, and
	// worker 0 runs as it so the grants are observed.
	ChurnQuerier string
	// ChurnGroups are group principals churn grants may target instead
	// of ChurnQuerier directly, exercising group-scoped invalidation.
	ChurnGroups []string
	// ChurnOwners is the owner pool churn grants draw from.
	ChurnOwners []int64
	Groups      policy.Groups
	// BasePolicies is the static corpus loaded into the store; the
	// checker evaluates them as ground truth.
	BasePolicies []*policy.Policy
	Queries      []Query
}

// OpKind is one work shape in the mix.
type OpKind int

// The op kinds.
const (
	// OpStream opens a streaming query, drains a few rows, and Closes
	// early.
	OpStream OpKind = iota
	// OpExhaust materialises the full result.
	OpExhaust
	// OpPrepared executes through a prepared statement.
	OpPrepared
	// OpBackend ships the rewritten query to a fake backend and decodes
	// the wire result.
	OpBackend
	numOpKinds
)

// String names the kind for reports.
func (k OpKind) String() string {
	switch k {
	case OpStream:
		return "stream"
	case OpExhaust:
		return "exhaust"
	case OpPrepared:
		return "prepared"
	case OpBackend:
		return "backend"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Mix is the relative weight of each op kind.
type Mix struct {
	Stream   int `json:"stream"`
	Exhaust  int `json:"exhaust"`
	Prepared int `json:"prepared"`
	Backend  int `json:"backend"`
}

// DefaultMix leans on streaming reads with a tail of heavier shapes.
func DefaultMix() Mix { return Mix{Stream: 4, Exhaust: 3, Prepared: 2, Backend: 1} }

func (m Mix) weights() [numOpKinds]int {
	return [numOpKinds]int{m.Stream, m.Exhaust, m.Prepared, m.Backend}
}

// pick draws an op kind by weight.
func (m Mix) pick(r *rand.Rand) OpKind {
	w := m.weights()
	total := 0
	for _, x := range w {
		total += x
	}
	if total <= 0 {
		return OpExhaust
	}
	n := r.Intn(total)
	for k, x := range w {
		if n < x {
			return OpKind(k)
		}
		n -= x
	}
	return OpExhaust
}

// Executor runs ops for one worker. Implementations exist for in-process
// sessions and for the sieve-server wire path.
type Executor interface {
	// Run executes q as kind and returns the observed result rows in the
	// relation's schema layout (nil when the kind does not surface
	// checkable rows) plus the result columns.
	Run(ctx context.Context, kind OpKind, q Query) (rows []storage.Row, cols []string, err error)
	Close()
}

// ExecutorFactory builds one worker's executor for a querier identity.
// Run hands it the live Checker so executors can report parity breaches
// (the fake-backend path) against the churn clock.
type ExecutorFactory func(worker int, querier string, ck *Checker) (Executor, error)

// Config scales a run.
type Config struct {
	Seed int64
	// Workers is the number of concurrent querier goroutines.
	Workers int
	// Ops is the closed-loop op count per worker.
	Ops int
	// StreamLimit is how many rows OpStream drains before Closing early.
	StreamLimit int
	// ZipfQuerier / ZipfQuery skew identity and query selection (s > 1;
	// larger is more skewed).
	ZipfQuerier float64
	ZipfQuery   float64
	Mix         Mix
	// Churn enables the add/revoke goroutine.
	Churn bool
	// ChurnHold is how long a churn grant lives before revocation.
	ChurnHold time.Duration
	// DenyEvery makes every Nth worker run as a default-deny querier
	// (0 = none).
	DenyEvery int
	// MaxSamples bounds retained violation/error samples.
	MaxSamples int
}

// KindStats is one op kind's share of a Result.
type KindStats struct {
	Ops   int64   `json:"ops"`
	Rows  int64   `json:"rows"`
	P50us float64 `json:"p50_us"`
	P95us float64 `json:"p95_us"`
	P99us float64 `json:"p99_us"`
}

// Result is one run's report.
type Result struct {
	Workload string        `json:"workload"`
	Workers  int           `json:"workers"`
	Ops      int64         `json:"ops"`
	Rows     int64         `json:"rows"`
	Errors   int64         `json:"errors"`
	Duration time.Duration `json:"duration_ns"`

	P50us      float64 `json:"p50_us"`
	P95us      float64 `json:"p95_us"`
	P99us      float64 `json:"p99_us"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	RowsPerSec float64 `json:"rows_per_sec"`

	Kinds map[string]*KindStats `json:"kinds"`

	ChurnAdds    int64 `json:"churn_adds"`
	ChurnRevokes int64 `json:"churn_revokes"`
	RowsChecked  int64 `json:"rows_checked"`

	Violations       ViolationCounts `json:"violations"`
	ViolationSamples []string        `json:"violation_samples,omitempty"`
	ErrorSamples     []string        `json:"error_samples,omitempty"`
}

// Failed reports whether the run breached an invariant or errored.
func (r *Result) Failed() bool { return r.Errors > 0 || r.Violations.Total() > 0 }

// workerStats accumulates one worker's measurements without locks.
type workerStats struct {
	durs       [numOpKinds][]time.Duration
	rows       [numOpKinds]int64
	errs       int64
	errSamples []string
}

// zipfIndex builds a Zipf sampler over [0, n). rand.NewZipf needs s > 1,
// so skews at or below 1 fall back to uniform.
func zipfIndex(r *rand.Rand, s float64, n int) func() int {
	if n <= 1 {
		return func() int { return 0 }
	}
	if s <= 1 {
		return func() int { return r.Intn(n) }
	}
	z := rand.NewZipf(r, s, 1, uint64(n-1))
	return func() int { return int(z.Uint64()) }
}

// Run drives the scenario: Workers goroutines, each bound to one querier
// drawn by Zipf rank, issue Ops mixed operations while (with Churn) a
// churn goroutine grants and revokes policies and probes after every
// revocation. The returned Result carries latency percentiles,
// throughput, churn counters, and the checker's verdicts; Run itself
// errors only on setup failure — op errors and violations land in the
// Result for the caller to gate on.
func Run(ctx context.Context, sc *Scenario, cfg Config, newExec ExecutorFactory) (*Result, error) {
	if cfg.Workers < 1 || cfg.Ops < 1 {
		return nil, fmt.Errorf("loadgen: Workers and Ops must be positive")
	}
	if len(sc.Queriers) == 0 || len(sc.Queries) == 0 {
		return nil, fmt.Errorf("loadgen: scenario %s has no queriers or queries", sc.Name)
	}
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = 10
	}
	if cfg.StreamLimit <= 0 {
		cfg.StreamLimit = 8
	}
	checker, err := NewChecker(sc, cfg.MaxSamples)
	if err != nil {
		return nil, err
	}

	// Assign querier identities deterministically before spawning.
	assign := rand.New(rand.NewSource(cfg.Seed))
	zq := zipfIndex(assign, cfg.ZipfQuerier, len(sc.Queriers))
	queriers := make([]string, cfg.Workers)
	for w := range queriers {
		switch {
		case w == 0 && cfg.Churn && sc.ChurnQuerier != "":
			queriers[w] = sc.ChurnQuerier
		case cfg.DenyEvery > 0 && len(sc.DenyQueriers) > 0 && (w+1)%cfg.DenyEvery == 0:
			queriers[w] = sc.DenyQueriers[w%len(sc.DenyQueriers)]
		default:
			queriers[w] = sc.Queriers[zq()]
		}
	}

	denySet := make(map[string]bool, len(sc.DenyQueriers))
	for _, q := range sc.DenyQueriers {
		denySet[q] = true
	}
	// Default-deny workers only run RowCheck queries: aggregations
	// legitimately return a zero row, which is not a leak.
	var rowCheckPool []Query
	for _, q := range sc.Queries {
		if q.RowCheck {
			rowCheckPool = append(rowCheckPool, q)
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	res := &Result{Workload: sc.Name, Workers: cfg.Workers, Kinds: map[string]*KindStats{}}
	var churnWG sync.WaitGroup
	if cfg.Churn && sc.ChurnQuerier != "" && len(sc.ChurnOwners) > 0 {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			churnLoop(runCtx, sc, cfg, checker, res)
		}()
	}

	stats := make([]workerStats, cfg.Workers)
	var wg sync.WaitGroup
	var setupErr atomic.Value
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			exec, err := newExec(w, queriers[w], checker)
			if err != nil {
				setupErr.Store(fmt.Errorf("loadgen: worker %d executor: %w", w, err))
				return
			}
			defer exec.Close()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*104729 + 1))
			pool := sc.Queries
			if denySet[queriers[w]] && len(rowCheckPool) > 0 {
				pool = rowCheckPool
			}
			zQuery := zipfIndex(rng, cfg.ZipfQuery, len(pool))
			for op := 0; op < cfg.Ops; op++ {
				if runCtx.Err() != nil {
					return
				}
				kind := cfg.Mix.pick(rng)
				q := pool[zQuery()]
				qStart := checker.Clock()
				t0 := time.Now()
				rows, cols, err := exec.Run(runCtx, kind, q)
				d := time.Since(t0)
				if err != nil {
					if errors.Is(err, context.Canceled) {
						return
					}
					st.errs++
					if len(st.errSamples) < 3 {
						st.errSamples = append(st.errSamples,
							fmt.Sprintf("worker %d (%s) %s/%s: %v", w, queriers[w], kind, q.Name, err))
					}
					continue
				}
				st.durs[kind] = append(st.durs[kind], d)
				st.rows[kind] += int64(len(rows))
				checker.CheckRows(queriers[w], qStart, q, rows, cols)
			}
		}(w)
	}
	wg.Wait()
	res.Duration = time.Since(start)
	cancel()
	churnWG.Wait()
	if err, _ := setupErr.Load().(error); err != nil {
		return nil, err
	}

	// Merge worker stats.
	var all []time.Duration
	for k := OpKind(0); k < numOpKinds; k++ {
		var durs []time.Duration
		var rows int64
		for i := range stats {
			durs = append(durs, stats[i].durs[k]...)
			rows += stats[i].rows[k]
		}
		if len(durs) == 0 && rows == 0 {
			continue
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		res.Kinds[k.String()] = &KindStats{
			Ops: int64(len(durs)), Rows: rows,
			P50us: percentileUS(durs, 50), P95us: percentileUS(durs, 95), P99us: percentileUS(durs, 99),
		}
		res.Ops += int64(len(durs))
		res.Rows += rows
		all = append(all, durs...)
	}
	for i := range stats {
		res.Errors += stats[i].errs
		for _, s := range stats[i].errSamples {
			if len(res.ErrorSamples) < cfg.MaxSamples {
				res.ErrorSamples = append(res.ErrorSamples, s)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.P50us = percentileUS(all, 50)
	res.P95us = percentileUS(all, 95)
	res.P99us = percentileUS(all, 99)
	if secs := res.Duration.Seconds(); secs > 0 {
		res.OpsPerSec = float64(res.Ops) / secs
		res.RowsPerSec = float64(res.Rows) / secs
	}
	res.RowsChecked = checker.RowsChecked()
	res.Violations, res.ViolationSamples = checker.Violations()
	return res, nil
}

// churnLoop grants and revokes policies against the live middleware for
// as long as the workers run. Every grant's liveness window is registered
// with the checker around the mutation (born before insert, died after
// revoke), and each revocation is followed by a targeted probe: the
// revoked owner's rows queried as the churn querier must be justified by
// something else or absent.
func churnLoop(ctx context.Context, sc *Scenario, cfg Config, checker *Checker, res *Result) {
	rng := rand.New(rand.NewSource(cfg.Seed + 7919))
	sess := sc.M.NewSession(policy.Metadata{Querier: sc.ChurnQuerier, Purpose: sc.Purpose})
	probe := Query{Name: "churn_probe", RowCheck: true}
	hold := cfg.ChurnHold
	if hold <= 0 {
		hold = time.Millisecond
	}
	for i := 0; ctx.Err() == nil; i++ {
		principal := sc.ChurnQuerier
		if len(sc.ChurnGroups) > 0 && i%2 == 1 {
			principal = sc.ChurnGroups[rng.Intn(len(sc.ChurnGroups))]
		}
		owner := sc.ChurnOwners[rng.Intn(len(sc.ChurnOwners))]
		e := checker.WillGrant(principal, owner)
		p := &policy.Policy{
			Owner: owner, Querier: principal, Purpose: sc.Purpose,
			Relation: sc.Relation, Action: policy.Allow,
		}
		if err := sc.M.AddPolicy(p); err != nil {
			checker.violation(func(v *ViolationCounts) { v.UnjustifiedRows++ }, "churn add failed: %v", err)
			return
		}
		atomic.AddInt64(&res.ChurnAdds, 1)
		sleepCtx(ctx, hold)
		if err := sc.M.RevokePolicy(p.ID); err != nil {
			checker.violation(func(v *ViolationCounts) { v.UnjustifiedRows++ }, "churn revoke failed: %v", err)
			return
		}
		checker.DidRevoke(e)
		atomic.AddInt64(&res.ChurnRevokes, 1)

		if ctx.Err() != nil {
			return
		}
		qStart := checker.Clock()
		probeSQL := fmt.Sprintf("SELECT * FROM %s WHERE %s = %d", sc.Relation, policy.OwnerAttr, owner)
		out, err := sess.Execute(ctx, probeSQL)
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				checker.violation(func(v *ViolationCounts) { v.UnjustifiedRows++ }, "churn probe failed: %v", err)
			}
			return
		}
		checker.CheckRows(sc.ChurnQuerier, qStart, probe, out.Rows, out.Columns)
	}
}

// sleepCtx sleeps for d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// percentileUS reads the p-th percentile of a sorted duration slice in
// microseconds.
func percentileUS(sorted []time.Duration, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Microsecond)
}
