package loadgen

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/sieve-db/sieve/internal/policy"
	"github.com/sieve-db/sieve/internal/storage"
)

// ViolationCounts tallies invariant breaches by category. All zeros is the
// soak's pass condition.
type ViolationCounts struct {
	// UnjustifiedRows is rows no base policy matches and no churn grant
	// covers anywhere inside the query's lifetime window.
	UnjustifiedRows int64 `json:"unjustified_rows"`
	// DefaultDenyRows is rows returned to a querier that holds no
	// policies at all.
	DefaultDenyRows int64 `json:"default_deny_rows"`
	// RevokedRows is unjustified rows whose owner had a churn grant that
	// was already dead before the query began — a revocation that
	// resurfaced.
	RevokedRows int64 `json:"revoked_rows"`
	// BackendParity is fake-backend executions whose decoded row count
	// diverged from the embedded baseline with no churn in between.
	BackendParity int64 `json:"backend_parity"`
}

// Total sums every category.
func (v ViolationCounts) Total() int64 {
	return v.UnjustifiedRows + v.DefaultDenyRows + v.RevokedRows + v.BackendParity
}

func (v *ViolationCounts) add(o ViolationCounts) {
	v.UnjustifiedRows += o.UnjustifiedRows
	v.DefaultDenyRows += o.DefaultDenyRows
	v.RevokedRows += o.RevokedRows
	v.BackendParity += o.BackendParity
}

// churnEntry is one dynamic grant's conservative liveness window on the
// checker's logical clock. born is stamped before the policy is inserted
// and died after the revocation returns, so the window over-covers the
// grant's real lifetime: a row justified only near the edges is given the
// benefit of the doubt, and the checker never false-alarms under races.
type churnEntry struct {
	principal string
	owner     int64
	born      int64
	died      int64 // 0 while live
}

// querierView is one querier's precomputed justification context: the
// compiled static policy set applicable to it, and the principal closure
// (itself plus its groups) that churn grants may arrive under.
type querierView struct {
	compiled   *policy.CompiledSet
	principals map[string]bool
	deny       bool
}

// Checker is the live invariant checker: under concurrent churn it holds
// every observed result row to the two-legal-worlds bound — the row must
// be justified by a policy that was legal at some point during the
// query's lifetime — keeps default-deny queriers empty, and flags revoked
// grants that resurface.
type Checker struct {
	sc       *Scenario
	ownerCol int

	clock atomic.Int64

	mu      sync.RWMutex
	byOwner map[int64][]*churnEntry
	views   map[string]*querierView
	counts  ViolationCounts
	samples []string
	maxSamp int

	rowsChecked atomic.Int64
}

// NewChecker precompiles the scenario's static policy corpus per querier.
func NewChecker(sc *Scenario, maxSamples int) (*Checker, error) {
	ownerCol := sc.Schema.ColumnIndex(policy.OwnerAttr)
	if ownerCol < 0 {
		return nil, fmt.Errorf("loadgen: relation %s has no %s column", sc.Relation, policy.OwnerAttr)
	}
	c := &Checker{
		sc: sc, ownerCol: ownerCol,
		byOwner: make(map[int64][]*churnEntry),
		views:   make(map[string]*querierView),
		maxSamp: maxSamples,
	}
	add := func(q string, deny bool) error {
		if _, ok := c.views[q]; ok {
			return nil
		}
		qm := policy.Metadata{Querier: q, Purpose: sc.Purpose}
		applicable := policy.Filter(sc.BasePolicies, qm, sc.Relation, sc.Groups)
		if deny && len(applicable) > 0 {
			return fmt.Errorf("loadgen: default-deny querier %s holds %d policies", q, len(applicable))
		}
		cs, err := policy.CompileSet(applicable, sc.Schema)
		if err != nil {
			return err
		}
		principals := map[string]bool{q: true}
		for _, g := range sc.Groups.GroupsOf(q) {
			principals[g] = true
		}
		c.views[q] = &querierView{compiled: cs, principals: principals, deny: deny}
		return nil
	}
	for _, q := range sc.Queriers {
		if err := add(q, false); err != nil {
			return nil, err
		}
	}
	if sc.ChurnQuerier != "" {
		if err := add(sc.ChurnQuerier, false); err != nil {
			return nil, err
		}
	}
	for _, q := range sc.DenyQueriers {
		if err := add(q, true); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Clock reads the logical churn clock. Queries record it immediately
// before starting and the checker reads it again after the last row is
// observed; that [start, now] interval is the query's lifetime window.
func (c *Checker) Clock() int64 { return c.clock.Load() }

// RowsChecked reports how many rows went through full per-row
// justification — the soak's proof that the checker actually ran.
func (c *Checker) RowsChecked() int64 { return c.rowsChecked.Load() }

// WillGrant registers a churn grant about to be inserted for
// principal/owner and stamps its birth. Call before Middleware.AddPolicy.
func (c *Checker) WillGrant(principal string, owner int64) *churnEntry {
	e := &churnEntry{principal: principal, owner: owner}
	c.mu.Lock()
	e.born = c.clock.Add(1)
	c.byOwner[owner] = append(c.byOwner[owner], e)
	c.mu.Unlock()
	return e
}

// DidRevoke stamps the grant's death. Call after Middleware.RevokePolicy
// has returned.
func (c *Checker) DidRevoke(e *churnEntry) {
	c.mu.Lock()
	e.died = c.clock.Add(1)
	c.mu.Unlock()
}

// violation records one breach sample and bumps its category.
func (c *Checker) violation(bump func(*ViolationCounts), format string, args ...any) {
	c.mu.Lock()
	bump(&c.counts)
	if len(c.samples) < c.maxSamp {
		c.samples = append(c.samples, fmt.Sprintf(format, args...))
	}
	c.mu.Unlock()
}

// Violations snapshots the counts and breach samples.
func (c *Checker) Violations() (ViolationCounts, []string) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.counts, append([]string(nil), c.samples...)
}

// BackendMismatch records a fake-backend row-count divergence observed
// with no churn tick in between (with churn in flight the two rewrites
// may legally see different policy sets, so callers only report when the
// clock was stable across the op).
func (c *Checker) BackendMismatch(querier string, q Query, got, want int64) {
	c.violation(func(v *ViolationCounts) { v.BackendParity++ },
		"backend parity: querier %s query %s decoded %d rows, embedded baseline %d", querier, q.Name, got, want)
}

// CheckRows holds a query's observed rows to the enforcement invariants.
// qStart must be the Clock() value read before the query began. Rows are
// justified row by row only for RowCheck queries (SELECT * over the
// protected relation); every query of a default-deny querier must come
// back empty.
func (c *Checker) CheckRows(querier string, qStart int64, q Query, rows []storage.Row, cols []string) {
	if len(rows) == 0 {
		return
	}
	qEnd := c.clock.Load()
	c.mu.RLock()
	view := c.views[querier]
	c.mu.RUnlock()
	if view == nil {
		return
	}
	if view.deny {
		c.violation(func(v *ViolationCounts) { v.DefaultDenyRows += int64(len(rows)) },
			"default-deny leak: querier %s received %d rows from %s", querier, len(rows), q.Name)
		return
	}
	if !q.RowCheck || len(cols) != c.sc.Schema.Len() {
		return
	}
	for _, row := range rows {
		if len(row) != c.sc.Schema.Len() {
			continue
		}
		c.rowsChecked.Add(1)
		owner := row[c.ownerCol].I
		matched, _, err := view.compiled.EvalOwnerFirstMatch(owner, row, nil)
		if err != nil {
			c.violation(func(v *ViolationCounts) { v.UnjustifiedRows++ },
				"checker error: querier %s query %s owner %d: %v", querier, q.Name, owner, err)
			continue
		}
		if matched {
			continue
		}
		justified, sawDead := c.churnJustifies(view, owner, qStart, qEnd)
		if justified {
			continue
		}
		if sawDead {
			c.violation(func(v *ViolationCounts) { v.RevokedRows++ },
				"revoked grant resurfaced: querier %s query %s owner %d window [%d,%d]",
				querier, q.Name, owner, qStart, qEnd)
		} else {
			c.violation(func(v *ViolationCounts) { v.UnjustifiedRows++ },
				"unjustified row: querier %s query %s owner %d window [%d,%d]",
				querier, q.Name, owner, qStart, qEnd)
		}
	}
}

// churnJustifies reports whether some churn grant to one of the
// querier's principals covers owner anywhere inside [qStart, qEnd]. A
// grant justifies the row if it was born by qEnd and not dead until
// after qStart (died > qStart: the death stamp happens after the
// revocation returned, so a query starting at or past that stamp can
// never legally see the grant). sawDead reports whether any applicable
// grant existed at all — it separates "revocation resurfaced" from
// "never granted".
func (c *Checker) churnJustifies(view *querierView, owner, qStart, qEnd int64) (justified, sawDead bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, e := range c.byOwner[owner] {
		if !view.principals[e.principal] {
			continue
		}
		sawDead = true
		if e.born <= qEnd && (e.died == 0 || e.died > qStart) {
			return true, true
		}
	}
	return false, sawDead
}
