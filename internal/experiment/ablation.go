package experiment

import (
	"context"
	"fmt"
	"time"

	"github.com/sieve-db/sieve/internal/core"
	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/guard"
	"github.com/sieve-db/sieve/internal/policy"
	"github.com/sieve-db/sieve/internal/workload"
)

// Ablations measures the contribution of SIEVE's individual design choices
// (the knobs DESIGN.md calls out): Theorem 1 range merging, utility-greedy
// guard grouping versus naive per-owner guards, index usage hints on the
// mysql dialect, and the Δ threshold.
func Ablations(cfg Config) (*Table, error) {
	tab := &Table{
		ID:      "Ablation",
		Title:   "Design-choice ablations, SELECT-ALL averaged over heavy queriers (ms)",
		Headers: []string{"variant", "avg ms", "avg guards"},
	}
	variants := []struct {
		name string
		opts []core.Option
	}{
		{"SIEVE (full)", nil},
		{"no range merging", []core.Option{core.WithGuardGenOptions(guard.GenOptions{NoMerge: true})}},
		{"owner-only guards", []core.Option{core.WithGuardGenOptions(guard.GenOptions{OwnerOnly: true})}},
		{"no index hints", []core.Option{core.WithoutHints()}},
		{"no delta (inline only)", []core.Option{core.WithDeltaThreshold(0)}},
		{"always delta", []core.Option{core.WithDeltaThreshold(1)}},
		{"forced LinearScan", []core.Option{core.WithForcedStrategy(core.LinearScan)}},
	}
	for _, v := range variants {
		avg, guards, err := runAblationVariant(cfg, v.opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", v.name, err)
		}
		tab.Rows = append(tab.Rows, []string{v.name, ms(avg), fmt.Sprintf("%.1f", guards)})
	}
	return tab, nil
}

func runAblationVariant(cfg Config, opts []core.Option) (time.Duration, float64, error) {
	env, err := NewCampusEnv(cfg, engine.MySQL(), opts...)
	if err != nil {
		return 0, 0, err
	}
	queriers := pickQueriers(env, cfg.Queriers)
	if len(queriers) == 0 {
		return 0, 0, fmt.Errorf("no queriers")
	}
	qAll := "SELECT * FROM " + workload.TableWiFi
	var total time.Duration
	var guards float64
	for _, qm := range queriers {
		sess := env.M.NewSession(qm)
		avg, _, err := timed(cfg.Reps, cfg.Timeout, func() error {
			_, err := sess.Execute(context.Background(), qAll)
			return err
		})
		if err != nil {
			return 0, 0, err
		}
		total += avg
		if ge, ok := env.M.GuardedExpression(qm, workload.TableWiFi); ok {
			guards += float64(len(ge.Guards))
		}
	}
	n := time.Duration(len(queriers))
	return total / n, guards / float64(len(queriers)), nil
}

// DynamicRegeneration measures §6's deferred-regeneration mode against
// eager regeneration under policy churn: total time for a mixed
// insert/query stream.
func DynamicRegeneration(cfg Config, inserts int) (*Table, error) {
	tab := &Table{
		ID:      "Section 6",
		Title:   "Eager vs k̃-deferred guard regeneration under policy churn",
		Headers: []string{"mode", "total ms", "regenerations"},
	}
	for _, mode := range []string{"eager", "deferred"} {
		var opts []core.Option
		if mode == "deferred" {
			opts = append(opts, core.WithRegenInterval(core.DefaultRegenConfig()))
		}
		env, err := NewCampusEnv(cfg, engine.MySQL(), opts...)
		if err != nil {
			return nil, err
		}
		queriers := pickQueriers(env, 1)
		if len(queriers) == 0 {
			return nil, fmt.Errorf("no queriers")
		}
		qm := queriers[0]
		sess := env.M.NewSession(qm)
		qAll := "SELECT * FROM " + workload.TableWiFi
		start := time.Now()
		if _, err := sess.Execute(context.Background(), qAll); err != nil {
			return nil, err
		}
		for i := 0; i < inserts; i++ {
			p := &policy.Policy{
				Owner: int64(i % cfg.Campus.Devices), Querier: qm.Querier, Purpose: qm.Purpose,
				Relation: workload.TableWiFi, Action: policy.Allow,
			}
			if err := env.M.AddPolicy(p); err != nil {
				return nil, err
			}
			if _, err := sess.Execute(context.Background(), qAll); err != nil {
				return nil, err
			}
		}
		total := time.Since(start)
		tab.Rows = append(tab.Rows, []string{
			mode, ms(total), fmt.Sprintf("%d", env.M.Regens(qm, workload.TableWiFi)),
		})
	}
	return tab, nil
}
