package experiment

import (
	"fmt"
	"time"

	"github.com/sieve-db/sieve/internal/core"
	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/policy"
	"github.com/sieve-db/sieve/internal/workload"
)

// VectorComparison measures the vectorised batch evaluator against
// row-at-a-time evaluation on the guarded linear scan — SELECT-ALL under a
// forced LinearScan strategy, so every measured query is the WHERE
// (guard1 AND partition1) OR … shape evaluated over whole segments. One row
// per measured querier (guard counts vary with their policy corpora), with
// the executor's batch and owner-dictionary counters alongside the
// speedup.
func VectorComparison(cfg Config) (*Table, error) {
	tab := &Table{
		ID:      "Vector",
		Title:   "Vectorised vs row-at-a-time guard evaluation, SELECT-ALL under LinearScan (ms)",
		Headers: []string{"querier", "guards", "row ms", "vector ms", "speedup", "batches", "rows/batch", "dict-pruned"},
		Notes: []string{
			"row = DB.ForceRowEval (rowPasses per tuple); vector = batch evaluation over storage.Batch columns",
			"dict-pruned counts segments refuted by owner dictionaries alone — zero tuple reads",
		},
	}
	env, err := NewCampusEnv(cfg, engine.MySQL(), core.WithForcedStrategy(core.LinearScan))
	if err != nil {
		return nil, err
	}
	queriers := workload.TopQueriers(env.Policies, cfg.Queriers, 10)
	if len(queriers) == 0 {
		return nil, fmt.Errorf("experiment: no heavy queriers")
	}
	qAll := "SELECT * FROM " + workload.TableWiFi
	for _, q := range queriers {
		qm := policy.Metadata{Querier: q, Purpose: "analytics"}
		sess := env.M.NewSession(qm)

		env.Campus.DB.ForceRowEval = true
		rowAvg, _, err := timed(cfg.Reps, cfg.Timeout, func() error {
			return runStrategy(sess, "SIEVE", qAll)
		})
		if err != nil {
			return nil, err
		}

		env.Campus.DB.ForceRowEval = false
		vecAvg, _, err := timed(cfg.Reps, cfg.Timeout, func() error {
			return runStrategy(sess, "SIEVE", qAll)
		})
		if err != nil {
			return nil, err
		}
		// Counter columns come from one dedicated execution, not the
		// warmup + reps of the timing loop, so "batches" and "dict-pruned"
		// read as per-query figures.
		env.Campus.DB.ResetCounters()
		if err := runStrategy(sess, "SIEVE", qAll); err != nil {
			return nil, err
		}
		c := env.Campus.DB.CountersSnapshot()

		guards := 0
		if ge, ok := env.M.GuardedExpression(qm, workload.TableWiFi); ok {
			guards = len(ge.Guards)
		}
		rowsPerBatch := "-"
		if c.BatchesVectorised > 0 {
			rowsPerBatch = fmt.Sprintf("%d", c.RowsVectorised/c.BatchesVectorised)
		}
		tab.Rows = append(tab.Rows, []string{
			q,
			fmt.Sprintf("%d", guards),
			ms(rowAvg), ms(vecAvg),
			fmt.Sprintf("%.2fx", float64(rowAvg)/float64(maxDur(vecAvg, time.Microsecond))),
			fmt.Sprintf("%d", c.BatchesVectorised),
			rowsPerBatch,
			fmt.Sprintf("%d", c.OwnerDictPruned),
		})
	}
	env.Campus.DB.ForceRowEval = false
	return tab, nil
}
