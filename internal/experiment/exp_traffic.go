package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/sieve-db/sieve/client"
	"github.com/sieve-db/sieve/internal/core"
	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/loadgen"
	"github.com/sieve-db/sieve/internal/obs"
	"github.com/sieve-db/sieve/internal/policy"
	"github.com/sieve-db/sieve/internal/server"
	"github.com/sieve-db/sieve/internal/workload"
)

// TrafficFile is where Traffic writes its machine-readable results.
const TrafficFile = "BENCH_traffic.json"

// TrafficCell is one (workload, mode) run of the traffic harness in
// BENCH_traffic.json. Durations are microseconds.
type TrafficCell struct {
	Workload string `json:"workload"`
	Mode     string `json:"mode"` // "inproc" | "server"
	Workers  int    `json:"workers"`

	Ops    int64 `json:"ops"`
	Rows   int64 `json:"rows"`
	Errors int64 `json:"errors"`

	P50us      float64 `json:"p50_us"`
	P95us      float64 `json:"p95_us"`
	P99us      float64 `json:"p99_us"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	RowsPerSec float64 `json:"rows_per_sec"`

	Kinds map[string]*loadgen.KindStats `json:"kinds"`

	ChurnAdds    int64 `json:"churn_adds"`
	ChurnRevokes int64 `json:"churn_revokes"`
	// RowsChecked is how many result rows went through full per-row
	// policy justification — proof the invariant checker ran.
	RowsChecked int64                   `json:"rows_checked"`
	Violations  loadgen.ViolationCounts `json:"violations"`

	// Cache is the middleware's guard/plan cache state after the run
	// (the environment is fresh per cell, so these are the run's own).
	Cache core.CacheStats `json:"cache"`

	// Wire counters from the server's /varz, server mode only.
	WireQueries      int64 `json:"wire_queries,omitempty"`
	WireRowsStreamed int64 `json:"wire_rows_streamed,omitempty"`
	// MetricsFamilies is how many families the /metrics scrape parsed,
	// server mode only (the parse itself is the gate).
	MetricsFamilies int `json:"metrics_families,omitempty"`
}

// TrafficResult is the BENCH_traffic.json document.
type TrafficResult struct {
	Seed         int64         `json:"seed"`
	Workers      int           `json:"workers"`
	OpsPerWorker int           `json:"ops_per_worker"`
	StreamLimit  int           `json:"stream_limit"`
	ZipfS        float64       `json:"zipf_s"`
	Mix          loadgen.Mix   `json:"mix"`
	Cells        []TrafficCell `json:"cells"`

	ViolationSamples []string `json:"violation_samples,omitempty"`
	ErrorSamples     []string `json:"error_samples,omitempty"`
}

// trafficQueries maps a workload corpus onto the harness's query pool,
// marking the shapes the checker can justify row by row.
func trafficQueries(named []workload.NamedQuery, relation string) []loadgen.Query {
	var out []loadgen.Query
	for _, q := range named {
		out = append(out, loadgen.Query{
			Name: q.Name, SQL: q.SQL,
			RowCheck: strings.HasPrefix(q.SQL, "SELECT * FROM "+relation),
		})
	}
	return out
}

// TrafficScenario builds a fresh environment and scenario for one
// workload ("campus", "mall", or "hospital"); each caller gets its own so
// runs stay independent and the reported cache stats belong to the run
// alone.
func TrafficScenario(cfg Config, name string) (*loadgen.Scenario, error) {
	switch name {
	case "campus":
		env, err := NewCampusEnv(cfg, engine.MySQL())
		if err != nil {
			return nil, err
		}
		queriers := workload.TopQueriers(env.Policies, 24, 1)
		var owners []int64
		for _, u := range env.Campus.ResidentUsers() {
			owners = append(owners, u.ID)
			if len(owners) == 16 {
				break
			}
		}
		return &loadgen.Scenario{
			Name: name, M: env.M, Relation: workload.TableWiFi,
			Schema:       env.Campus.DB.MustTable(workload.TableWiFi).Schema,
			Purpose:      "analytics",
			Queriers:     queriers,
			DenyQueriers: []string{"intruder:1", "intruder:2"},
			ChurnQuerier: "churn:campus",
			ChurnGroups:  []string{workload.GroupName(0), workload.GroupName(1)},
			ChurnOwners:  owners,
			Groups:       env.Campus.Groups(),
			BasePolicies: env.Policies,
			Queries:      trafficQueries(env.Campus.CorpusQueries(), workload.TableWiFi),
		}, nil
	case "mall":
		env, err := NewMallEnv(cfg, engine.MySQL())
		if err != nil {
			return nil, err
		}
		queriers := workload.TopQueriers(env.Policies, 24, 1)
		var owners []int64
		for i := 0; i < 16 && i < len(env.Mall.Customers); i++ {
			owners = append(owners, env.Mall.Customers[i].ID)
		}
		return &loadgen.Scenario{
			Name: name, M: env.M, Relation: workload.TableMallWiFi,
			Schema:       env.Mall.DB.MustTable(workload.TableMallWiFi).Schema,
			Purpose:      "marketing",
			Queriers:     queriers,
			DenyQueriers: []string{"intruder:1", "intruder:2"},
			ChurnQuerier: "churn:mall",
			ChurnOwners:  owners,
			Groups:       policy.NoGroups,
			BasePolicies: env.Policies,
			Queries:      trafficQueries(env.Mall.CorpusQueries(), workload.TableMallWiFi),
		}, nil
	case "hospital":
		env, err := NewHospitalEnv(cfg, engine.MySQL())
		if err != nil {
			return nil, err
		}
		// Staff queriers, not group principals: every access resolves
		// through the hospital → department → ward → role hierarchy.
		var queriers []string
		for _, s := range env.Hospital.Staff {
			queriers = append(queriers, s.Querier())
		}
		var owners []int64
		for i := 0; i < 16 && i < len(env.Hospital.Patients); i++ {
			owners = append(owners, env.Hospital.Patients[i].ID)
		}
		return &loadgen.Scenario{
			Name: name, M: env.M, Relation: workload.TableVitals,
			Schema:       env.Hospital.DB.MustTable(workload.TableVitals).Schema,
			Purpose:      "treatment",
			Queriers:     queriers,
			DenyQueriers: []string{"intruder:1", "intruder:2"},
			ChurnQuerier: "churn:hospital",
			ChurnGroups: []string{workload.WardGroup(0, 0), workload.DeptGroup(1),
				workload.RoleGroup("nurse")},
			ChurnOwners:  owners,
			Groups:       env.Hospital.Groups(),
			BasePolicies: env.Policies,
			Queries:      trafficQueries(env.Hospital.CorpusQueries(), workload.TableVitals),
		}, nil
	}
	return nil, fmt.Errorf("experiment: unknown traffic workload %q", name)
}

// Traffic runs the heavy-traffic harness: for each of the campus, mall,
// and hospital workloads, in process and over the sieve-server wire
// path, concurrent Zipf-skewed queriers run a mixed op workload under
// policy churn while the invariant checker watches every row. Results
// land in BENCH_traffic.json; any invariant violation or op error makes
// the experiment (and sieve-bench) fail after the artifact is written.
func Traffic(cfg Config) (*Table, error) {
	return TrafficToFile(cfg, TrafficFile)
}

// TrafficToFile is Traffic writing its JSON document to path.
func TrafficToFile(cfg Config, path string) (*Table, error) {
	if cfg.TrafficWorkers < 1 || cfg.TrafficOps < 1 {
		return nil, fmt.Errorf("experiment: traffic worker/op counts are empty (set TrafficWorkers, TrafficOps)")
	}
	lcfg := loadgen.Config{
		// The driver seed is offset from the master seed so it never
		// collides with the generator seeds ApplySeed derives.
		Seed:        cfg.Seed + 4,
		Workers:     cfg.TrafficWorkers,
		Ops:         cfg.TrafficOps,
		StreamLimit: cfg.TrafficStreamLimit,
		ZipfQuerier: cfg.TrafficZipf,
		ZipfQuery:   cfg.TrafficZipf,
		Mix:         loadgen.DefaultMix(),
		Churn:       true,
		ChurnHold:   cfg.TrafficChurnHold,
		DenyEvery:   cfg.TrafficDenyEvery,
		MaxSamples:  10,
	}
	res := TrafficResult{
		Seed: cfg.Seed, Workers: lcfg.Workers, OpsPerWorker: lcfg.Ops,
		StreamLimit: lcfg.StreamLimit, ZipfS: lcfg.ZipfQuerier, Mix: lcfg.Mix,
	}
	tab := &Table{
		ID:      "Traffic",
		Title:   "Heavy-traffic mixed workload under policy churn (µs)",
		Headers: []string{"workload", "mode", "ops", "rows", "err", "p50", "p95", "p99", "rows/s", "checked", "viol"},
		Notes: []string{
			fmt.Sprintf("seed %d: %d workers × %d ops, mix stream/exhaust/prepared/backend %d/%d/%d/%d, Zipf s=%.2f",
				cfg.Seed, lcfg.Workers, lcfg.Ops, lcfg.Mix.Stream, lcfg.Mix.Exhaust, lcfg.Mix.Prepared, lcfg.Mix.Backend, lcfg.ZipfQuerier),
			"every row is held live to the two-legal-worlds bound under churn; default-deny queriers must stay empty",
		},
	}
	ctx := context.Background()
	failed := 0
	for _, wl := range []string{"campus", "mall", "hospital"} {
		for _, mode := range []string{"inproc", "server"} {
			sc, err := TrafficScenario(cfg, wl)
			if err != nil {
				return nil, err
			}
			cell := TrafficCell{Workload: wl, Mode: mode, Workers: lcfg.Workers}
			var run *loadgen.Result
			if mode == "inproc" {
				run, err = loadgen.Run(ctx, sc, lcfg, loadgen.NewInProcFactory(sc, lcfg))
			} else {
				run, err = runTrafficServer(ctx, sc, lcfg, &cell)
			}
			if err != nil {
				return nil, fmt.Errorf("experiment: traffic %s/%s: %w", wl, mode, err)
			}
			cell.Ops, cell.Rows, cell.Errors = run.Ops, run.Rows, run.Errors
			cell.P50us, cell.P95us, cell.P99us = run.P50us, run.P95us, run.P99us
			cell.OpsPerSec, cell.RowsPerSec = run.OpsPerSec, run.RowsPerSec
			cell.Kinds = run.Kinds
			cell.ChurnAdds, cell.ChurnRevokes = run.ChurnAdds, run.ChurnRevokes
			cell.RowsChecked = run.RowsChecked
			cell.Violations = run.Violations
			cell.Cache = sc.M.CacheStats()
			res.Cells = append(res.Cells, cell)
			for _, s := range run.ViolationSamples {
				res.ViolationSamples = append(res.ViolationSamples, wl+"/"+mode+": "+s)
			}
			for _, s := range run.ErrorSamples {
				res.ErrorSamples = append(res.ErrorSamples, wl+"/"+mode+": "+s)
			}
			if run.Failed() {
				failed++
			}
			tab.Rows = append(tab.Rows, []string{
				wl, mode,
				fmt.Sprintf("%d", cell.Ops), fmt.Sprintf("%d", cell.Rows), fmt.Sprintf("%d", cell.Errors),
				fmt.Sprintf("%.0f", cell.P50us), fmt.Sprintf("%.0f", cell.P95us), fmt.Sprintf("%.0f", cell.P99us),
				fmt.Sprintf("%.0f", cell.RowsPerSec),
				fmt.Sprintf("%d", cell.RowsChecked),
				fmt.Sprintf("%d", cell.Violations.Total()),
			})
		}
	}

	out, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var check TrafficResult
	if err := json.Unmarshal(raw, &check); err != nil {
		return nil, fmt.Errorf("experiment: %s does not parse: %w", path, err)
	}
	if len(check.Cells) != 6 {
		return nil, fmt.Errorf("experiment: %s has %d cells, want 6", path, len(check.Cells))
	}
	tab.Notes = append(tab.Notes, fmt.Sprintf("wrote %s (%d cells)", path, len(check.Cells)))
	if failed > 0 {
		return nil, fmt.Errorf("experiment: traffic: %d of %d cells breached invariants or errored (artifact kept at %s): %s",
			failed, len(res.Cells), path, strings.Join(append(res.ViolationSamples, res.ErrorSamples...), "; "))
	}
	return tab, nil
}

// runTrafficServer boots an in-process sieve-server on the scenario's
// middleware and drives the same load over loopback HTTP, then scrapes
// /varz and /metrics into the cell. Policy churn keeps mutating the
// middleware directly, so the wire path is measured under the same
// two-legal-worlds conditions.
func runTrafficServer(ctx context.Context, sc *loadgen.Scenario, lcfg loadgen.Config, cell *TrafficCell) (*loadgen.Result, error) {
	srv, err := server.New(server.Config{Middleware: sc.M, AllowDemoTokens: true})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
		<-done
	}()

	base := "http://" + l.Addr().String()
	run, err := loadgen.Run(ctx, sc, lcfg, loadgen.NewWireFactory(base, sc, lcfg))
	if err != nil {
		return nil, err
	}

	vz, err := client.New(base, "demo:"+sc.Queriers[0]+"|"+sc.Purpose).Varz(ctx)
	if err != nil {
		return nil, fmt.Errorf("varz scrape: %w", err)
	}
	cell.WireQueries = vz["queries_total"]
	cell.WireRowsStreamed = vz["rows_streamed"]

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("metrics scrape: %w", err)
	}
	defer resp.Body.Close()
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("metrics exposition: %w", err)
	}
	for _, want := range []string{"sieve_queries_total", "sieve_rows_streamed_total", "sieve_query_duration_us"} {
		if fams[want] == nil {
			return nil, fmt.Errorf("metrics exposition: family %s missing", want)
		}
	}
	cell.MetricsFamilies = len(fams)
	return run, nil
}
