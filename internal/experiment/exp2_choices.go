package experiment

import (
	"context"
	"fmt"
	"time"

	"github.com/sieve-db/sieve/internal/core"
	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/policy"
	"github.com/sieve-db/sieve/internal/sqlparser"
	"github.com/sieve-db/sieve/internal/storage"
	"github.com/sieve-db/sieve/internal/workload"
)

// InlineVsDelta reproduces Figure 3 / Experiment 2.1: the per-query cost of
// evaluating one guard's partition inline versus through the Δ operator as
// the partition grows. The crossover is where Δ's per-invocation overhead
// is amortised by its owner-based policy filtering (paper: |PG| ≈ 120).
func InlineVsDelta(cfg Config) (*Table, error) {
	sizes := []int{10, 20, 40, 80, 160, 320}
	tab := &Table{
		ID:      "Figure 3",
		Title:   "Inline vs Δ operator by guard partition size",
		Headers: []string{"|PG|", "inline ms", "delta ms", "winner"},
		Notes:   []string{"paper: crossover at ≈120 policies on MySQL"},
	}
	crossover := -1
	for _, n := range sizes {
		inlineT, err := runSharedGuard(cfg, n, 0) // threshold 0: never Δ
		if err != nil {
			return nil, err
		}
		deltaT, err := runSharedGuard(cfg, n, 1) // threshold 1: always Δ
		if err != nil {
			return nil, err
		}
		winner := "inline"
		if deltaT < inlineT {
			winner = "delta"
			if crossover < 0 {
				crossover = n
			}
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", n), ms(inlineT), ms(deltaT), winner,
		})
	}
	if crossover >= 0 {
		tab.Notes = append(tab.Notes, fmt.Sprintf("measured crossover at |PG| ≈ %d", crossover))
	} else {
		tab.Notes = append(tab.Notes, "no crossover within the measured range")
	}
	return tab, nil
}

// runSharedGuard times a SELECT-ALL where the querier's n policies all
// share one selective AP guard, with the Δ threshold pinned.
func runSharedGuard(cfg Config, n int, threshold int) (time.Duration, error) {
	c, err := workload.BuildCampus(cfg.Campus, engine.MySQL())
	if err != nil {
		return 0, err
	}
	store, err := policy.NewStore(c.DB)
	if err != nil {
		return 0, err
	}
	// n owners, all granting "querier" access at AP 0 in distinct narrow
	// time windows: a tuple at AP 0 matches few policies, so inline pays
	// α·|PG| checks while Δ pays the UDF plus the owner's own policies.
	var ps []*policy.Policy
	for i := 0; i < n; i++ {
		h := 8 + i%10
		ps = append(ps, &policy.Policy{
			Owner: int64(i % cfg.Campus.Devices), Querier: "watcher", Purpose: "analytics",
			Relation: workload.TableWiFi, Action: policy.Allow,
			Conditions: []policy.ObjectCondition{
				policy.Compare("wifiAP", sqlparser.CmpEq, storage.NewInt(0)),
				policy.RangeClosed("ts_time",
					storage.NewTime(int64(h)*3600), storage.NewTime(int64(h+1)*3600)),
			},
		})
	}
	if err := store.BulkLoad(ps); err != nil {
		return 0, err
	}
	m, err := core.New(store, core.WithDeltaThreshold(threshold))
	if err != nil {
		return 0, err
	}
	if err := m.Protect(workload.TableWiFi); err != nil {
		return 0, err
	}
	sess := m.NewSession(policy.Metadata{Querier: "watcher", Purpose: "analytics"})
	avg, _, err := timed(cfg.Reps, cfg.Timeout, func() error {
		_, err := sess.Execute(context.Background(), "SELECT * FROM "+workload.TableWiFi)
		return err
	})
	return avg, err
}

// IndexChoice reproduces Figure 4 / Experiment 2.2: IndexQuery versus
// IndexGuards across increasing query cardinality, averaged over three
// guard-cardinality regimes. IndexQuery wins at low query cardinality;
// IndexGuards wins beyond the crossover (paper: ≈0.07).
func IndexChoice(cfg Config) (*Table, error) {
	tab := &Table{
		ID:      "Figure 4",
		Title:   "IndexQuery vs IndexGuards by query cardinality",
		Headers: []string{"query sel", "IndexQuery ms", "IndexGuards ms", "winner"},
		Notes:   []string{"paper: IndexQuery below ≈0.07 query cardinality, IndexGuards above"},
	}
	// Guard-cardinality regimes scale with the device population (roughly
	// 2%/4%/8% of owners hold policies); query windows sweep from minutes
	// to most of the day so the query selectivity crosses the guards'.
	minuteWindows := []int{5, 20, 60, 150, 300, 600}
	guardFracs := []float64{0.02, 0.04, 0.08}
	for _, minutes := range minuteWindows {
		var iqTotal, igTotal time.Duration
		var sel float64
		for _, frac := range guardFracs {
			nPol := maxi(4, int(frac*float64(cfg.Campus.Devices)))
			iq, s, err := runIndexChoice(cfg, minutes, nPol, core.IndexQuery)
			if err != nil {
				return nil, err
			}
			ig, _, err := runIndexChoice(cfg, minutes, nPol, core.IndexGuards)
			if err != nil {
				return nil, err
			}
			iqTotal += iq
			igTotal += ig
			sel = s
		}
		winner := string(core.IndexQuery)
		if igTotal < iqTotal {
			winner = string(core.IndexGuards)
		}
		n := time.Duration(len(guardFracs))
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%.3f", sel), ms(iqTotal / n), ms(igTotal / n), winner,
		})
	}
	return tab, nil
}

func runIndexChoice(cfg Config, minutes, nPolicies int, strat core.Strategy) (time.Duration, float64, error) {
	c, err := workload.BuildCampus(cfg.Campus, engine.MySQL())
	if err != nil {
		return 0, 0, err
	}
	store, err := policy.NewStore(c.DB)
	if err != nil {
		return 0, 0, err
	}
	var ps []*policy.Policy
	for i := 0; i < nPolicies; i++ {
		ps = append(ps, &policy.Policy{
			Owner: int64(i), Querier: "watcher", Purpose: "analytics",
			Relation: workload.TableWiFi, Action: policy.Allow,
			Conditions: []policy.ObjectCondition{
				policy.Compare("wifiAP", sqlparser.CmpEq, storage.NewInt(int64(i%cfg.Campus.APs))),
			},
		})
	}
	if err := store.BulkLoad(ps); err != nil {
		return 0, 0, err
	}
	m, err := core.New(store, core.WithForcedStrategy(strat))
	if err != nil {
		return 0, 0, err
	}
	if err := m.Protect(workload.TableWiFi); err != nil {
		return 0, 0, err
	}
	endSecs := int64(8*3600 + minutes*60)
	q := fmt.Sprintf(
		"SELECT * FROM %s WHERE ts_time BETWEEN TIME '08:00' AND TIME '%02d:%02d'",
		workload.TableWiFi, endSecs/3600, (endSecs/60)%60)
	// Measure the query predicate's true selectivity for the x-axis.
	t := c.DB.MustTable(workload.TableWiFi)
	idx, _ := t.Index("ts_time")
	matched := idx.CountRange(storage.NewTime(8*3600), false, storage.NewTime(endSecs), false)
	sel := float64(matched) / float64(t.NumRows())

	sess := m.NewSession(policy.Metadata{Querier: "watcher", Purpose: "analytics"})
	avg, _, err := timed(cfg.Reps, cfg.Timeout, func() error {
		_, err := sess.Execute(context.Background(), q)
		return err
	})
	return avg, sel, err
}
