package experiment

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/guard"
	"github.com/sieve-db/sieve/internal/policy"
	"github.com/sieve-db/sieve/internal/storage"
	"github.com/sieve-db/sieve/internal/workload"
)

// querierGE is one querier's generated guarded expression with its
// generation time.
type querierGE struct {
	querier  string
	policies []*policy.Policy
	ge       *guard.GuardedExpression
	genTime  time.Duration
}

// generateAll builds guarded expressions for every querier with at least
// minPolicies policies, under the wifi relation's statistics.
func generateAll(env *CampusEnv, minPolicies int) ([]querierGE, error) {
	counts := workload.QuerierCounts(env.Policies)
	var queriers []string
	for q, n := range counts {
		if n >= minPolicies {
			queriers = append(queriers, q)
		}
	}
	sort.Strings(queriers)
	stats, ok := env.Campus.DB.Stats(workload.TableWiFi)
	if !ok {
		return nil, fmt.Errorf("experiment: wifi statistics missing")
	}
	t := env.Campus.DB.MustTable(workload.TableWiFi)
	indexed := map[string]bool{}
	for _, c := range t.IndexedColumns() {
		indexed[c] = true
	}
	sel := &guard.TableSelectivity{Stats: stats, IndexedCols: indexed}
	cm := env.M.CostModel()

	var out []querierGE
	for _, q := range queriers {
		var ps []*policy.Policy
		for _, p := range env.Policies {
			if p.Querier == q {
				ps = append(ps, p)
			}
		}
		start := time.Now()
		ge, err := guard.Generate(ps, workload.TableWiFi, q, "any", sel, cm)
		if err != nil {
			return nil, err
		}
		out = append(out, querierGE{querier: q, policies: ps, ge: ge, genTime: time.Since(start)})
	}
	return out, nil
}

// GuardGenCost reproduces Figure 2: guard generation time as a function of
// the querier's policy count, averaged over buckets of queriers ordered by
// policy count (the paper buckets 50 users at a time; the bucket width
// scales with the corpus).
func GuardGenCost(cfg Config) (*Table, error) {
	env, err := NewCampusEnv(cfg, engine.MySQL())
	if err != nil {
		return nil, err
	}
	ges, err := generateAll(env, 1)
	if err != nil {
		return nil, err
	}
	sort.Slice(ges, func(i, j int) bool { return len(ges[i].policies) < len(ges[j].policies) })
	bucket := len(ges) / 10
	if bucket < 1 {
		bucket = 1
	}
	tab := &Table{
		ID:      "Figure 2",
		Title:   "Guard generation cost vs number of policies",
		Headers: []string{"avg policies", "avg generation ms", "queriers"},
	}
	for i := 0; i < len(ges); i += bucket {
		end := i + bucket
		if end > len(ges) {
			end = len(ges)
		}
		var pols, tot float64
		for _, g := range ges[i:end] {
			pols += float64(len(g.policies))
			tot += g.genTime.Seconds() * 1000
		}
		n := float64(end - i)
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%.0f", pols/n), fmt.Sprintf("%.3f", tot/n), fmt.Sprintf("%d", end-i),
		})
	}
	tab.Notes = append(tab.Notes, "paper: cost grows ~linearly, ≈150 ms at 160 policies on their hardware")
	return tab, nil
}

// GuardQuality reproduces Table 6: per-querier statistics of the generated
// guarded expressions and the policy-evaluation savings guards bring.
func GuardQuality(cfg Config) (*Table, error) {
	env, err := NewCampusEnv(cfg, engine.MySQL())
	if err != nil {
		return nil, err
	}
	ges, err := generateAll(env, 2)
	if err != nil {
		return nil, err
	}
	var polCounts, guardCounts, partSizes, cards, savings []float64
	for _, g := range ges {
		if len(g.ge.Guards) == 0 {
			continue
		}
		polCounts = append(polCounts, float64(len(g.policies)))
		guardCounts = append(guardCounts, float64(len(g.ge.Guards)))
		for _, gd := range g.ge.Guards {
			partSizes = append(partSizes, float64(len(gd.Policies)))
			cards = append(cards, gd.Sel)
		}
		s, err := evalSavings(env, g, cfg.SampleTuples)
		if err != nil {
			return nil, err
		}
		savings = append(savings, s)
	}
	tab := &Table{
		ID:      "Table 6",
		Title:   "Analysis of policies and generated guards",
		Headers: []string{"metric", "min", "avg", "max", "SD"},
		Rows: [][]string{
			statRow("|p_uk| policies/querier", polCounts, "%.0f"),
			statRow("|G| guards/querier", guardCounts, "%.0f"),
			statRow("|pG_i| partition size", partSizes, "%.1f"),
			statRow("rho(G_i) guard cardinality", cards, "%.4f"),
			statRow("savings", savings, "%.4f"),
		},
		Notes: []string{"paper: policies 31/187/359, guards 2/31/60, partition 4/7/60, cardinality 0.01%/3%/24%, savings ≈0.99"},
	}
	return tab, nil
}

// evalSavings computes Table 6's Savings metric on a tuple sample: the
// fraction of policy evaluations eliminated by guards versus evaluating the
// full DNF per tuple.
func evalSavings(env *CampusEnv, g querierGE, sample int) (float64, error) {
	schema := env.Campus.DB.MustTable(workload.TableWiFi).Schema
	full, err := policy.CompileSet(g.policies, schema)
	if err != nil {
		return 0, err
	}
	partitions := make([]*policy.CompiledSet, len(g.ge.Guards))
	for i, gd := range g.ge.Guards {
		cs, err := policy.CompileSet(gd.Policies, schema)
		if err != nil {
			return 0, err
		}
		partitions[i] = cs
	}
	var without, with float64
	n := 0
	var scanErr error
	env.Campus.DB.MustTable(workload.TableWiFi).Scan(func(_ storage.RowID, r storage.Row) bool {
		n++
		_, checked, err := full.EvalFirstMatch(r, nil)
		if err != nil {
			scanErr = err
			return false
		}
		without += float64(checked)
		for i, gd := range g.ge.Guards {
			colIdx := schema.ColumnIndex(gd.Cond.Attr)
			if colIdx < 0 {
				continue
			}
			ok, err := gd.Cond.Matches(r[colIdx])
			if err != nil {
				scanErr = err
				return false
			}
			if !ok {
				continue // guard filtered the tuple: zero policy checks
			}
			matched, checked, err := partitions[i].EvalFirstMatch(r, nil)
			if err != nil {
				scanErr = err
				return false
			}
			with += float64(checked)
			if matched {
				break
			}
		}
		return n < sample
	})
	if scanErr != nil {
		return 0, scanErr
	}
	if without == 0 {
		return 0, nil
	}
	return (without - with) / without, nil
}

func statRow(name string, xs []float64, f string) []string {
	if len(xs) == 0 {
		return []string{name, "-", "-", "-", "-"}
	}
	min, max, sum := xs[0], xs[0], 0.0
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
		sum += x
	}
	mean := sum / float64(len(xs))
	varsum := 0.0
	for _, x := range xs {
		varsum += (x - mean) * (x - mean)
	}
	sd := math.Sqrt(varsum / float64(len(xs)))
	return []string{name,
		fmt.Sprintf(f, min), fmt.Sprintf(f, mean), fmt.Sprintf(f, max), fmt.Sprintf(f, sd)}
}

// GuardQuadrants reproduces Table 7: mean SELECT-ALL evaluation time by
// quadrant of (number of guards × total guard cardinality), split at the
// medians.
func GuardQuadrants(cfg Config) (*Table, error) {
	env, err := NewCampusEnv(cfg, engine.MySQL())
	if err != nil {
		return nil, err
	}
	ges, err := generateAll(env, 2)
	if err != nil {
		return nil, err
	}
	// Bound the measured queriers: an even sample preserves the quadrant
	// spread without scanning the relation hundreds of times.
	const maxMeasured = 48
	if len(ges) > maxMeasured {
		step := len(ges) / maxMeasured
		var sampled []querierGE
		for i := 0; i < len(ges); i += step {
			sampled = append(sampled, ges[i])
		}
		ges = sampled
	}
	type point struct {
		guards int
		rho    float64
		t      time.Duration
	}
	var pts []point
	qAll := "SELECT * FROM " + workload.TableWiFi
	for _, g := range ges {
		if len(g.ge.Guards) == 0 {
			continue
		}
		// Pick the purpose actually used by this querier's policies so the
		// middleware path is exercised end to end.
		qm := policy.Metadata{Querier: g.querier, Purpose: g.policies[0].Purpose}
		if qm.Purpose == policy.AnyPurpose {
			qm.Purpose = "analytics"
		}
		sess := env.M.NewSession(qm)
		avg, _, err := timed(cfg.Reps, cfg.Timeout, func() error {
			_, err := sess.Execute(context.Background(), qAll)
			return err
		})
		if err != nil {
			return nil, err
		}
		pts = append(pts, point{guards: len(g.ge.Guards), rho: g.ge.TotalSel(), t: avg})
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("experiment: no measurable queriers")
	}
	gs := make([]float64, len(pts))
	rs := make([]float64, len(pts))
	for i, p := range pts {
		gs[i] = float64(p.guards)
		rs[i] = p.rho
	}
	gMed, rMed := median(gs), median(rs)
	quad := map[[2]bool][]time.Duration{}
	for _, p := range pts {
		k := [2]bool{float64(p.guards) > gMed, p.rho > rMed}
		quad[k] = append(quad[k], p.t)
	}
	name := map[bool]string{false: "low", true: "high"}
	tab := &Table{
		ID:      "Table 7",
		Title:   "Mean evaluation time (ms) by |G| × total guard cardinality quadrant",
		Headers: []string{"|G|", "rho(G)", "mean ms", "queriers"},
		Notes: []string{
			fmt.Sprintf("medians: |G|=%.1f rho=%.4f", gMed, rMed),
			"paper: 227.2 / 537.0 / 469.0 / 1406.7 ms (low-low, low-high, high-low, high-high)",
		},
	}
	for _, g := range []bool{false, true} {
		for _, r := range []bool{false, true} {
			ds := quad[[2]bool{g, r}]
			if len(ds) == 0 {
				tab.Rows = append(tab.Rows, []string{name[g], name[r], "-", "0"})
				continue
			}
			var tot time.Duration
			for _, d := range ds {
				tot += d
			}
			tab.Rows = append(tab.Rows, []string{
				name[g], name[r], ms(tot / time.Duration(len(ds))), fmt.Sprintf("%d", len(ds)),
			})
		}
	}
	return tab, nil
}

func median(xs []float64) float64 {
	s := append([]float64{}, xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
