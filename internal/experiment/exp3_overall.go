package experiment

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"github.com/sieve-db/sieve/internal/core"
	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/policy"
	"github.com/sieve-db/sieve/internal/workload"
)

// strategies measured by Experiment 3, in the paper's column order.
var overallStrategies = []string{"BaselineP", "BaselineI", "BaselineU", "SIEVE"}

// runStrategy executes one query under one strategy label through a
// session bound outside the measured region, so the measurement covers
// the per-query pipeline (rewrite + execution) and not per-call identity
// setup.
func runStrategy(sess *core.Session, label, q string) error {
	var err error
	switch label {
	case "SIEVE":
		_, err = sess.Execute(context.Background(), q)
	default:
		_, err = sess.Middleware().ExecuteBaselineContext(
			context.Background(), core.BaselineKind(label), q, sess.Metadata())
	}
	return err
}

// pickQueriers selects the measured queriers: the most-targeted users
// (§7.2 uses five queriers across four profiles).
func pickQueriers(env *CampusEnv, n int) []policy.Metadata {
	var out []policy.Metadata
	for _, q := range workload.TopQueriers(env.Policies, n*3, 1) {
		if _, ok := env.Campus.UserByName(q); !ok {
			continue // group/profile queriers are not §7.2 subjects
		}
		purpose := dominantPurpose(env.Policies, q)
		out = append(out, policy.Metadata{Querier: q, Purpose: purpose})
		if len(out) == n {
			break
		}
	}
	return out
}

// dominantPurpose picks the purpose with the most policies for the querier
// so the measured query actually has a policy corpus behind it.
func dominantPurpose(ps []*policy.Policy, querier string) string {
	counts := map[string]int{}
	for _, p := range ps {
		if p.Querier == querier && p.Purpose != policy.AnyPurpose {
			counts[p.Purpose]++
		}
	}
	best, bestN := "analytics", -1
	for pu, n := range counts {
		if n > bestN || (n == bestN && pu < best) {
			best, bestN = pu, n
		}
	}
	return best
}

// OverallComparison reproduces Table 8: the average per-query time of the
// three baselines and SIEVE for Q1/Q2/Q3 at three selectivity classes.
func OverallComparison(cfg Config) (*Table, error) {
	env, err := NewCampusEnv(cfg, engine.MySQL())
	if err != nil {
		return nil, err
	}
	queriers := pickQueriers(env, cfg.Queriers)
	if len(queriers) == 0 {
		return nil, fmt.Errorf("experiment: no user queriers in the corpus")
	}
	tab := &Table{
		ID:      "Table 8",
		Title:   "Overall comparison for Q1, Q2, Q3 (ms)",
		Headers: append([]string{"query", "rho(Q)"}, overallStrategies...),
		Notes: []string{
			"paper shape: BaselineP/U degrade with cardinality; BaselineI flat; SIEVE flat and fastest",
		},
	}
	r := rand.New(rand.NewSource(cfg.Campus.Seed + 100))
	for _, tmpl := range workload.QueryTemplates {
		for _, class := range workload.SelectivityClasses {
			queries := env.Campus.Queries(tmpl, class, cfg.QueriesPerCell, r.Int63())
			row := []string{string(tmpl), string(class)}
			for _, strat := range overallStrategies {
				avg, s, err := timeCell(cfg, env.M, strat, queries, queriers)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/%s: %w", tmpl, class, strat, err)
				}
				row = append(row, cellString(avg, s))
			}
			tab.Rows = append(tab.Rows, row)
		}
	}
	return tab, nil
}

// cellStats tracks TO accounting per cell.
type cellStats struct {
	completed int
	timedOut  int
}

func cellString(avg time.Duration, s cellStats) string {
	switch {
	case s.completed == 0:
		return "TO"
	case s.timedOut > 0:
		return ms(avg) + "+"
	default:
		return ms(avg)
	}
}

// timeCell averages one strategy over queries × queriers with the paper's
// timeout conventions.
func timeCell(cfg Config, m *core.Middleware, strat string, queries []string, queriers []policy.Metadata) (time.Duration, cellStats, error) {
	var total time.Duration
	var s cellStats
	for _, q := range queries {
		for _, qm := range queriers {
			sess := m.NewSession(qm)
			avg, to, err := timed(cfg.Reps, cfg.Timeout, func() error {
				return runStrategy(sess, strat, q)
			})
			if err != nil {
				return 0, s, err
			}
			if to {
				s.timedOut++
				continue
			}
			s.completed++
			total += avg
		}
	}
	if s.completed == 0 {
		return 0, s, nil
	}
	return total / time.Duration(s.completed), s, nil
}

// OverallByProfile reproduces Tables 9, 10, 11: the Table 8 measurement for
// one template, broken down by the querier's profile (Faculty, Grad,
// Undergrad, Staff).
func OverallByProfile(cfg Config, tmpl workload.QueryTemplate) (*Table, error) {
	env, err := NewCampusEnv(cfg, engine.MySQL())
	if err != nil {
		return nil, err
	}
	id := map[workload.QueryTemplate]string{workload.Q1: "Table 9", workload.Q2: "Table 10", workload.Q3: "Table 11"}[tmpl]
	tab := &Table{
		ID:      id,
		Title:   fmt.Sprintf("Comparison for %s by querier profile (ms)", tmpl),
		Headers: append([]string{"profile", "rho(Q)"}, overallStrategies...),
	}
	profiles := []workload.Profile{workload.Faculty, workload.Grad, workload.Undergrad, workload.Staff}
	r := rand.New(rand.NewSource(cfg.Campus.Seed + 200))
	for _, prof := range profiles {
		qms := queriersOfProfile(env, prof, 2)
		if len(qms) == 0 {
			tab.Rows = append(tab.Rows, []string{string(prof), "-", "-", "-", "-", "-"})
			continue
		}
		for _, class := range workload.SelectivityClasses {
			queries := env.Campus.Queries(tmpl, class, cfg.QueriesPerCell, r.Int63())
			row := []string{string(prof), string(class)}
			for _, strat := range overallStrategies {
				avg, s, err := timeCell(cfg, env.M, strat, queries, qms)
				if err != nil {
					return nil, err
				}
				row = append(row, cellString(avg, s))
			}
			tab.Rows = append(tab.Rows, row)
		}
	}
	return tab, nil
}

// queriersOfProfile picks the most-targeted queriers of one profile.
func queriersOfProfile(env *CampusEnv, prof workload.Profile, n int) []policy.Metadata {
	var out []policy.Metadata
	for _, q := range workload.TopQueriers(env.Policies, len(env.Policies), 1) {
		u, ok := env.Campus.UserByName(q)
		if !ok || u.Profile != prof {
			continue
		}
		out = append(out, policy.Metadata{Querier: q, Purpose: dominantPurpose(env.Policies, q)})
		if len(out) == n {
			break
		}
	}
	return out
}
