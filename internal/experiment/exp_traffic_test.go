package experiment

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestTrafficArtifact runs the heavy-traffic harness at a small scale and
// asserts BENCH_traffic.json — the artifact bench_compare gates CI on —
// parses, covers every (workload, mode) cell, and carries sane numbers.
func TestTrafficArtifact(t *testing.T) {
	cfg := TestConfig()
	cfg.TrafficWorkers = 6
	cfg.TrafficOps = 6
	path := filepath.Join(t.TempDir(), "BENCH_traffic.json")
	tab, err := TrafficToFile(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("table has %d rows, want 6", len(tab.Rows))
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res TrafficResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if res.Seed != cfg.Seed {
		t.Fatalf("artifact seed = %d, want %d", res.Seed, cfg.Seed)
	}
	if res.Workers != cfg.TrafficWorkers || res.OpsPerWorker != cfg.TrafficOps {
		t.Fatalf("artifact config %d×%d, want %d×%d", res.Workers, res.OpsPerWorker, cfg.TrafficWorkers, cfg.TrafficOps)
	}
	seen := map[string]bool{}
	for _, c := range res.Cells {
		seen[c.Workload+"/"+c.Mode] = true
		if c.Ops <= 0 {
			t.Errorf("%s/%s: no ops completed", c.Workload, c.Mode)
		}
		if c.Errors != 0 {
			t.Errorf("%s/%s: %d op errors: %v", c.Workload, c.Mode, c.Errors, res.ErrorSamples)
		}
		if c.Violations.Total() != 0 {
			t.Errorf("%s/%s: %d invariant violations: %v", c.Workload, c.Mode, c.Violations.Total(), res.ViolationSamples)
		}
		if !(c.P50us <= c.P95us && c.P95us <= c.P99us) {
			t.Errorf("%s/%s: percentiles not monotone: p50=%.0f p95=%.0f p99=%.0f",
				c.Workload, c.Mode, c.P50us, c.P95us, c.P99us)
		}
		if c.P50us <= 0 || c.OpsPerSec <= 0 {
			t.Errorf("%s/%s: non-positive measurement: p50=%.0f ops/s=%.2f", c.Workload, c.Mode, c.P50us, c.OpsPerSec)
		}
		if c.RowsChecked <= 0 {
			t.Errorf("%s/%s: invariant checker saw no rows", c.Workload, c.Mode)
		}
		if c.ChurnAdds <= 0 || c.ChurnRevokes <= 0 {
			t.Errorf("%s/%s: churn did not run: adds=%d revokes=%d", c.Workload, c.Mode, c.ChurnAdds, c.ChurnRevokes)
		}
		if c.Mode == "server" {
			if c.WireQueries <= 0 {
				t.Errorf("%s/server: /varz reported no queries", c.Workload)
			}
			if c.MetricsFamilies <= 0 {
				t.Errorf("%s/server: /metrics exposition empty", c.Workload)
			}
		}
	}
	for _, wl := range []string{"campus", "mall", "hospital"} {
		for _, mode := range []string{"inproc", "server"} {
			if !seen[wl+"/"+mode] {
				t.Errorf("artifact missing cell %s/%s", wl, mode)
			}
		}
	}

	// The harness must refuse an empty config rather than write a hollow file.
	cfg.TrafficWorkers = 0
	if _, err := TrafficToFile(cfg, filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Fatal("empty traffic config produced an artifact")
	}
}
