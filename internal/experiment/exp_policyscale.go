package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/sieve-db/sieve/internal/core"
	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/policy"
	"github.com/sieve-db/sieve/internal/workload"
)

// PolicyScaleFile is where PolicyScale writes its machine-readable
// results.
const PolicyScaleFile = "BENCH_policy_scale.json"

// policyScaleCell is one (policy count, querier count) measurement in
// BENCH_policy_scale.json.
type policyScaleCell struct {
	Policies int `json:"policies"`
	Queriers int `json:"queriers"`
	// Profiles is the number of distinct policy signatures across the
	// population; the signature cache holds guard states and plans to
	// O(profiles), not O(queriers).
	Profiles    int   `json:"profiles"`
	GuardStates int64 `json:"guard_states"`
	GuardRegens int64 `json:"guard_regens"`
	PlansCached int   `json:"plans_cached"`
	// FirstPassUS / SteadyUS are the mean per-querier rewrite-side
	// latencies (µs) of the cold pass (every claim resolved, shared
	// states bound) and the warm pass (token hits only).
	FirstPassUS float64 `json:"first_pass_us_per_querier"`
	SteadyUS    float64 `json:"steady_us_per_querier"`
	// SteadyHitRate is Δhits/(Δhits+Δmisses) of the guard signature
	// cache over the warm pass.
	SteadyHitRate float64 `json:"steady_hit_rate"`
	// Churn deltas from adding one policy to the most-populous group:
	// how many claims the scoped invalidation touched, and how many
	// plans/guard generations the next full pass had to rebuild.
	ChurnClaimsInvalidated int64 `json:"churn_claims_invalidated"`
	ChurnPlansRebuilt      int64 `json:"churn_plans_rebuilt"`
	ChurnGuardRegens       int64 `json:"churn_guard_regens"`
}

// policyScaleResult is the BENCH_policy_scale.json document.
type policyScaleResult struct {
	Seed   int64             `json:"seed"`
	Groups int               `json:"groups"`
	ZipfS  float64           `json:"zipf_s"`
	Cells  []policyScaleCell `json:"cells"`
}

// PolicyScale measures the million-policy regime: rewrite-side latency,
// signature-cache effectiveness, and the blast radius of policy churn as
// the policy corpus (10³→10⁵ at bench scale) and querier population
// grow while the profile count stays fixed. Results also land in
// BENCH_policy_scale.json, written and then re-parsed so a malformed
// document fails the run.
func PolicyScale(cfg Config) (*Table, error) {
	return PolicyScaleToFile(cfg, PolicyScaleFile)
}

// PolicyScaleToFile is PolicyScale writing its JSON document to path.
func PolicyScaleToFile(cfg Config, path string) (*Table, error) {
	if len(cfg.PolicyScalePolicies) == 0 || len(cfg.PolicyScaleQueriers) == 0 {
		return nil, fmt.Errorf("experiment: policyscale sweep is empty (set PolicyScalePolicies and PolicyScaleQueriers)")
	}
	tab := &Table{
		ID:      "PolicyScale",
		Title:   "Million-policy regime: signature-shared plans and scoped invalidation",
		Headers: []string{"policies", "queriers", "profiles", "states", "plans", "first µs/q", "steady µs/q", "hit rate", "churn claims", "churn plans"},
		Notes: []string{
			"states and plans are O(profiles), not O(queriers): queriers sharing a policy profile share one guard generation and one rewritten plan",
			"churn columns: one AddPolicy against the most-populous group; only that signature's claims and plans are touched",
		},
	}
	res := policyScaleResult{Seed: cfg.Seed, Groups: cfg.PolicyScaleGroups, ZipfS: cfg.PolicyScaleZipf}
	for _, nq := range cfg.PolicyScaleQueriers {
		for _, np := range cfg.PolicyScalePolicies {
			cell, err := policyScaleCellRun(cfg, np, nq)
			if err != nil {
				return nil, fmt.Errorf("experiment: policyscale %dp/%dq: %w", np, nq, err)
			}
			res.Cells = append(res.Cells, *cell)
			tab.Rows = append(tab.Rows, []string{
				fmt.Sprintf("%d", cell.Policies),
				fmt.Sprintf("%d", cell.Queriers),
				fmt.Sprintf("%d", cell.Profiles),
				fmt.Sprintf("%d", cell.GuardStates),
				fmt.Sprintf("%d", cell.PlansCached),
				fmt.Sprintf("%.1f", cell.FirstPassUS),
				fmt.Sprintf("%.1f", cell.SteadyUS),
				fmt.Sprintf("%.3f", cell.SteadyHitRate),
				fmt.Sprintf("%d", cell.ChurnClaimsInvalidated),
				fmt.Sprintf("%d", cell.ChurnPlansRebuilt),
			})
		}
	}
	out, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return nil, err
	}
	// Read the document back and re-parse it: the file on disk — not the
	// in-memory struct — is what downstream tooling consumes, so a
	// malformed or empty document must fail here.
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var check policyScaleResult
	if err := json.Unmarshal(raw, &check); err != nil {
		return nil, fmt.Errorf("experiment: %s does not parse: %w", path, err)
	}
	if len(check.Cells) == 0 {
		return nil, fmt.Errorf("experiment: %s has no cells", path)
	}
	tab.Notes = append(tab.Notes, fmt.Sprintf("wrote %s (%d cells)", path, len(check.Cells)))
	return tab, nil
}

// policyScaleCellRun builds one regime environment and measures it.
func policyScaleCellRun(cfg Config, policies, queriers int) (*policyScaleCell, error) {
	scfg := workload.DefaultScaleConfig()
	scfg.Groups = cfg.PolicyScaleGroups
	if cfg.PolicyScaleZipf > 1 {
		scfg.ZipfS = cfg.PolicyScaleZipf
	}
	scfg.Policies = policies
	scfg.Queriers = queriers
	corpus := workload.BuildScaleCorpus(scfg)

	db, err := corpus.BuildScaleDB(engine.MySQL())
	if err != nil {
		return nil, err
	}
	store, err := policy.NewStore(db)
	if err != nil {
		return nil, err
	}
	if err := store.BulkLoad(corpus.Policies); err != nil {
		return nil, err
	}
	m, err := core.New(store, core.WithGroups(corpus.Groups()))
	if err != nil {
		return nil, err
	}
	if err := m.Protect(workload.TableTelemetry); err != nil {
		return nil, err
	}
	st, err := m.Prepare("SELECT * FROM " + workload.TableTelemetry)
	if err != nil {
		return nil, err
	}

	sessions := make([]*core.Session, len(corpus.Queriers))
	for i, q := range corpus.Queriers {
		sessions[i] = m.NewSession(policy.Metadata{Querier: q, Purpose: "analytics"})
	}
	pass := func() (time.Duration, error) {
		start := time.Now()
		for _, sess := range sessions {
			if _, err := st.Report(sess); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	cell := &policyScaleCell{Policies: policies, Queriers: queriers, Profiles: corpus.Profiles}

	// Cold pass: every querier resolves a claim; queriers sharing a
	// profile bind the same guard state and plan.
	cold, err := pass()
	if err != nil {
		return nil, err
	}
	cs := m.CacheStats()
	cell.GuardStates = cs.GuardStates
	cell.GuardRegens = cs.GuardRegens
	cell.PlansCached = st.CachedPlans()
	cell.FirstPassUS = float64(cold.Microseconds()) / float64(queriers)

	// One end-to-end execution, so the measured plans also run.
	if _, err := st.Execute(context.Background(), sessions[0]); err != nil {
		return nil, err
	}

	// Warm pass: tokens hit, claims stay valid.
	before := m.CacheStats()
	warm, err := pass()
	if err != nil {
		return nil, err
	}
	after := m.CacheStats()
	cell.SteadyUS = float64(warm.Microseconds()) / float64(queriers)
	dHits := after.GuardCacheHits - before.GuardCacheHits
	dMiss := after.GuardCacheMisses - before.GuardCacheMisses
	if dHits+dMiss > 0 {
		cell.SteadyHitRate = float64(dHits) / float64(dHits+dMiss)
	}

	// Churn: one policy added to the most-populous group. Scoped
	// invalidation must touch only that signature — the next full pass
	// rebuilds one profile's guard state and plan, not the population's.
	head := 0
	counts := make([]int, scfg.Groups)
	for _, g := range corpus.GroupOf {
		counts[g]++
		if counts[g] > counts[head] {
			head = g
		}
	}
	preChurn := m.CacheStats()
	preRewrites := st.Rewrites()
	if err := m.AddPolicy(&policy.Policy{
		Owner: 0, Querier: workload.ScaleGroupName(head), Purpose: policy.AnyPurpose,
		Relation: workload.TableTelemetry, Action: policy.Allow,
	}); err != nil {
		return nil, err
	}
	if _, err := pass(); err != nil {
		return nil, err
	}
	postChurn := m.CacheStats()
	cell.ChurnClaimsInvalidated = postChurn.ClaimsInvalidated - preChurn.ClaimsInvalidated
	cell.ChurnPlansRebuilt = st.Rewrites() - preRewrites
	cell.ChurnGuardRegens = postChurn.GuardRegens - preChurn.GuardRegens
	return cell, nil
}
