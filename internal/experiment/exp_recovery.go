package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/storage"
	"github.com/sieve-db/sieve/internal/wal"
)

// RecoveryFile is where Recovery writes its machine-readable results.
const RecoveryFile = "BENCH_recovery.json"

// recoveryTable is the relation the durability benchmark loads: shaped
// like the WiFi connectivity relation (ids, owner, AP, timestamp) plus a
// short string payload so snapshot throughput is not an integer-only
// best case.
const recoveryTable = "bench_events"

// recoveryCell is one record-count measurement in BENCH_recovery.json.
type recoveryCell struct {
	Records int `json:"records"`
	// Append-side cost of running with the log on (SyncNever, so the
	// number is the logging overhead, not the disk's fsync latency).
	WALBytes int64   `json:"wal_bytes"`
	AppendUS float64 `json:"append_us_per_record"`
	// Cold recovery from the bootstrap snapshot plus a full-length WAL
	// suffix: the worst case a crash can leave behind.
	ColdRecoveryMS float64 `json:"cold_recovery_ms"`
	ReplayPerSec   float64 `json:"replay_records_per_s"`
	// Checkpoint write throughput, and recovery when that snapshot
	// covers everything (the post-clean-shutdown boot).
	SnapshotBytes int64   `json:"snapshot_bytes"`
	SnapshotMS    float64 `json:"snapshot_ms"`
	SnapshotMBps  float64 `json:"snapshot_mb_per_s"`
	RestoreMS     float64 `json:"snapshot_restore_ms"`
}

// recoveryResult is the BENCH_recovery.json document.
type recoveryResult struct {
	Seed  int64          `json:"seed"`
	Table string         `json:"table"`
	Cells []recoveryCell `json:"cells"`
}

// Recovery measures the durability subsystem: WAL append overhead,
// snapshot write throughput, replay rate, and cold-recovery wall time
// across the configured record counts (10⁴–10⁶ at bench scale). Results
// also land in BENCH_recovery.json, written and re-parsed so a malformed
// document fails the run.
func Recovery(cfg Config) (*Table, error) {
	return RecoveryToFile(cfg, RecoveryFile)
}

// RecoveryToFile is Recovery writing its JSON document to path.
func RecoveryToFile(cfg Config, path string) (*Table, error) {
	if len(cfg.RecoveryRecords) == 0 {
		return nil, fmt.Errorf("experiment: recovery sweep is empty (set RecoveryRecords)")
	}
	tab := &Table{
		ID:      "Recovery",
		Title:   "Durability: WAL append, snapshot throughput, cold recovery",
		Headers: []string{"records", "wal MB", "append µs/rec", "cold ms", "replay rec/s", "snap MB", "snap ms", "snap MB/s", "restore ms"},
		Notes: []string{
			"cold = bootstrap snapshot + full WAL replay (the worst crash); restore = one covering snapshot, zero replay (the clean boot)",
			"appends run under SyncNever so the numbers isolate logging cost from the disk's fsync latency",
		},
	}
	res := recoveryResult{Seed: cfg.Seed, Table: recoveryTable}
	for _, n := range cfg.RecoveryRecords {
		cell, err := recoveryCellRun(n)
		if err != nil {
			return nil, fmt.Errorf("experiment: recovery %d records: %w", n, err)
		}
		res.Cells = append(res.Cells, *cell)
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", cell.Records),
			fmt.Sprintf("%.1f", float64(cell.WALBytes)/1e6),
			fmt.Sprintf("%.2f", cell.AppendUS),
			fmt.Sprintf("%.1f", cell.ColdRecoveryMS),
			fmt.Sprintf("%.0f", cell.ReplayPerSec),
			fmt.Sprintf("%.1f", float64(cell.SnapshotBytes)/1e6),
			fmt.Sprintf("%.1f", cell.SnapshotMS),
			fmt.Sprintf("%.0f", cell.SnapshotMBps),
			fmt.Sprintf("%.1f", cell.RestoreMS),
		})
	}
	out, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var check recoveryResult
	if err := json.Unmarshal(raw, &check); err != nil {
		return nil, fmt.Errorf("experiment: %s does not parse: %w", path, err)
	}
	if len(check.Cells) == 0 {
		return nil, fmt.Errorf("experiment: %s has no cells", path)
	}
	tab.Notes = append(tab.Notes, fmt.Sprintf("wrote %s (%d cells)", path, len(check.Cells)))
	return tab, nil
}

// recoveryRow synthesises the i-th event row.
func recoveryRow(i int) storage.Row {
	return storage.Row{
		storage.NewInt(int64(i)),
		storage.NewInt(int64(i % 997)),
		storage.NewInt(int64(i % 64)),
		storage.NewTime(int64(i % 86400)),
		storage.NewString(fmt.Sprintf("event-%d-payload", i)),
	}
}

// recoveryDB creates the empty benchmark relation.
func recoveryDB() (*engine.DB, error) {
	db := engine.New(engine.MySQL())
	schema := storage.MustSchema(
		storage.Column{Name: "id", Type: storage.KindInt},
		storage.Column{Name: "owner", Type: storage.KindInt},
		storage.Column{Name: "ap", Type: storage.KindInt},
		storage.Column{Name: "ts", Type: storage.KindTime},
		storage.Column{Name: "note", Type: storage.KindString},
	)
	tab, err := db.CreateTable(recoveryTable, schema)
	if err != nil {
		return nil, err
	}
	return db, tab.TrackOwners("owner")
}

// recoveryCellRun loads n records through the WAL, then measures the two
// recovery shapes and the checkpoint in between.
func recoveryCellRun(n int) (*recoveryCell, error) {
	dir, err := os.MkdirTemp("", "sieve-recovery-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Load: bootstrap snapshot of the empty relation, then n logged
	// inserts, no checkpoints — the longest possible replay suffix.
	db, err := recoveryDB()
	if err != nil {
		return nil, err
	}
	m, err := wal.Open(dir, wal.Options{Sync: wal.SyncNever, CheckpointEvery: -1})
	if err != nil {
		return nil, err
	}
	protected := func() []string { return []string{recoveryTable} }
	if err := m.Start(db, protected); err != nil {
		return nil, err
	}
	db.SetWAL(m)
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := db.InsertRow(recoveryTable, recoveryRow(i)); err != nil {
			return nil, err
		}
	}
	appendDur := time.Since(start)
	cell := &recoveryCell{
		Records:  n,
		WALBytes: m.Varz()["wal_bytes"],
		AppendUS: float64(appendDur.Microseconds()) / float64(n),
	}
	if err := m.Close(); err != nil {
		return nil, err
	}

	// Cold recovery: every record replays.
	m2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return nil, err
	}
	db2 := engine.New(engine.MySQL())
	start = time.Now()
	rec, err := m2.Recover(db2)
	if err != nil {
		return nil, err
	}
	coldDur := time.Since(start)
	if rec.Replayed != n {
		return nil, fmt.Errorf("cold recovery replayed %d of %d records", rec.Replayed, n)
	}
	cell.ColdRecoveryMS = float64(coldDur.Microseconds()) / 1e3
	cell.ReplayPerSec = float64(n) / coldDur.Seconds()

	// Checkpoint: one covering snapshot, measured as write throughput.
	if err := m2.Start(db2, protected); err != nil {
		return nil, err
	}
	start = time.Now()
	if err := m2.Checkpoint(); err != nil {
		return nil, err
	}
	snapDur := time.Since(start)
	if cell.SnapshotBytes, err = newestSnapshotSize(dir); err != nil {
		return nil, err
	}
	cell.SnapshotMS = float64(snapDur.Microseconds()) / 1e3
	if s := snapDur.Seconds(); s > 0 {
		cell.SnapshotMBps = float64(cell.SnapshotBytes) / 1e6 / s
	}
	if err := m2.Close(); err != nil {
		return nil, err
	}

	// Restore-only recovery: the clean-shutdown boot.
	m3, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return nil, err
	}
	db3 := engine.New(engine.MySQL())
	start = time.Now()
	rec3, err := m3.Recover(db3)
	if err != nil {
		return nil, err
	}
	restoreDur := time.Since(start)
	if rec3.Replayed != 0 {
		return nil, fmt.Errorf("post-checkpoint recovery replayed %d records, want 0", rec3.Replayed)
	}
	cell.RestoreMS = float64(restoreDur.Microseconds()) / 1e3
	return cell, nil
}

// newestSnapshotSize stats the newest snapshot in dir.
func newestSnapshotSize(dir string) (int64, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil || len(matches) == 0 {
		return 0, fmt.Errorf("no snapshot in %s (err=%v)", dir, err)
	}
	newest := matches[0]
	for _, p := range matches[1:] {
		if p > newest {
			newest = p
		}
	}
	st, err := os.Stat(newest)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
