package experiment

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/sieve-db/sieve/internal/workload"
)

func TestTableString(t *testing.T) {
	tab := &Table{
		ID: "Table X", Title: "demo",
		Headers: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
	}
	s := tab.String()
	for _, want := range []string{"Table X", "demo", "333", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestTimedHonoursTimeout(t *testing.T) {
	avg, to, err := timed(2, time.Hour, func() error { return nil })
	if err != nil || to {
		t.Fatalf("timed = %v,%v,%v", avg, to, err)
	}
	_, to, err = timed(1, time.Nanosecond, func() error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	if err != nil || !to {
		t.Fatal("timeout not detected")
	}
}

func TestGuardGenCostTable(t *testing.T) {
	tab, err := GuardGenCost(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty Figure 2")
	}
	// Buckets ordered by policy count ascending.
	prev := -1.0
	for _, r := range tab.Rows {
		n, err := strconv.ParseFloat(r[0], 64)
		if err != nil {
			t.Fatalf("bad cell %q", r[0])
		}
		if n < prev {
			t.Fatalf("buckets not sorted: %v after %v", n, prev)
		}
		prev = n
	}
}

func TestGuardQualityTable(t *testing.T) {
	tab, err := GuardQuality(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("Table 6 rows = %d, want 5", len(tab.Rows))
	}
	// Savings must be high (paper ≈0.99); accept ≥0.5 at toy scale.
	savings := tab.Rows[4]
	avg, err := strconv.ParseFloat(savings[2], 64)
	if err != nil {
		t.Fatalf("bad savings cell %q", savings[2])
	}
	if avg < 0.5 || avg > 1.0 {
		t.Errorf("avg savings = %v, want in [0.5, 1]", avg)
	}
}

func TestGuardQuadrantsTable(t *testing.T) {
	tab, err := GuardQuadrants(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Table 7 rows = %d, want 4 quadrants", len(tab.Rows))
	}
}

func TestInlineVsDeltaTable(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	cfg := TestConfig()
	tab, err := InlineVsDelta(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("Figure 3 rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[3] != "inline" && r[3] != "delta" {
			t.Errorf("bad winner %q", r[3])
		}
	}
}

func TestIndexChoiceTable(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	tab, err := IndexChoice(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("Figure 4 rows = %d", len(tab.Rows))
	}
	// Query selectivity column must be non-decreasing.
	prev := -1.0
	for _, r := range tab.Rows {
		sel, err := strconv.ParseFloat(r[0], 64)
		if err != nil {
			t.Fatalf("bad sel cell %q", r[0])
		}
		if sel < prev {
			t.Fatalf("selectivities not sorted")
		}
		prev = sel
	}
}

func TestOverallComparisonTable(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	tab, err := OverallComparison(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 { // 3 templates × 3 classes
		t.Fatalf("Table 8 rows = %d, want 9", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if len(r) != 6 {
			t.Fatalf("row width %d", len(r))
		}
	}
}

func TestOverallByProfileTable(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	tab, err := OverallByProfile(TestConfig(), workload.Q1)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "Table 9" {
		t.Fatalf("table id = %s", tab.ID)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty profile table")
	}
}

func TestPostgresComparisonTable(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	tab, err := PostgresComparison(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty Figure 5")
	}
	// Policy sizes ascend.
	prev := -1
	for _, r := range tab.Rows {
		n, err := strconv.Atoi(r[0])
		if err != nil || n < prev {
			t.Fatalf("bad size column: %v", r[0])
		}
		prev = n
	}
}

func TestMallScalabilityTable(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	tab, err := MallScalability(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty Figure 6")
	}
	for _, r := range tab.Rows {
		if !strings.HasSuffix(r[3], "x") {
			t.Errorf("speedup cell %q", r[3])
		}
	}
}

func TestAblationsTable(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	tab, err := Ablations(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("ablation rows = %d", len(tab.Rows))
	}
}

func TestDynamicRegenerationTable(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	tab, err := DynamicRegeneration(TestConfig(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	eagerRegens, _ := strconv.Atoi(tab.Rows[0][2])
	deferredRegens, _ := strconv.Atoi(tab.Rows[1][2])
	if deferredRegens > eagerRegens {
		t.Errorf("deferred mode regenerated more often (%d) than eager (%d)", deferredRegens, eagerRegens)
	}
}
