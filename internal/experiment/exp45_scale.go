package experiment

import (
	"fmt"
	"runtime"
	"time"

	"github.com/sieve-db/sieve/internal/core"
	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/policy"
	"github.com/sieve-db/sieve/internal/workload"
)

// cumulativeLoad duplicates the querier's first size policies under a
// synthetic querier identity "<querier>@<size>", so one store holds every
// cumulative subset (§7.2 Experiments 4 and 5 build cumulative policy sets
// per querier).
func cumulativeLoad(store *policy.Store, ps []*policy.Policy, querier string, sizes []int) error {
	var own []*policy.Policy
	for _, p := range ps {
		if p.Querier == querier {
			own = append(own, p)
		}
	}
	for _, size := range sizes {
		if size > len(own) {
			size = len(own)
		}
		var batch []*policy.Policy
		for _, p := range own[:size] {
			clone := *p
			clone.ID = 0
			clone.Querier = fmt.Sprintf("%s@%d", querier, size)
			clone.Purpose = policy.AnyPurpose
			batch = append(batch, &clone)
		}
		if err := store.BulkLoad(batch); err != nil {
			return err
		}
	}
	return nil
}

// scaleSizes adapts the paper's cumulative set sizes (75…750 for TIPPERS,
// 100…1200 for Mall) to the corpus actually generated.
func scaleSizes(maxAvailable, steps, smallest int) []int {
	if maxAvailable < smallest {
		smallest = maxAvailable
	}
	var out []int
	for i := 1; i <= steps; i++ {
		s := smallest * i
		if s > maxAvailable {
			break
		}
		out = append(out, s)
	}
	if len(out) == 0 && maxAvailable > 0 {
		out = []int{maxAvailable}
	}
	return out
}

// PostgresComparison reproduces Figure 5 / Experiment 4: SELECT-ALL time
// for cumulative policy-set sizes, comparing BaselineI on the mysql
// dialect, BaselineP on postgres, and SIEVE on both. The paper's findings:
// SIEVE wins everywhere, and the postgres speedup grows with the policy
// count thanks to bitmap OR-combination of the guard index scans.
func PostgresComparison(cfg Config) (*Table, error) {
	tab := &Table{
		ID:      "Figure 5",
		Title:   "SIEVE on MySQL and PostgreSQL dialects, SELECT-ALL (ms)",
		Headers: []string{"policies", "BaselineI(M)", "BaselineP(P)", "SIEVE(M)", "SIEVE(P)", "speedup(P)"},
		Notes: []string{
			"paper: SIEVE outperforms both; the PostgreSQL speedup factor is highest at the largest policy count",
		},
	}

	type side struct {
		env   *CampusEnv
		label string
	}
	my, err := NewCampusEnv(cfg, engine.MySQL())
	if err != nil {
		return nil, err
	}
	pg, err := NewCampusEnv(cfg, engine.Postgres())
	if err != nil {
		return nil, err
	}
	sides := []side{{my, "M"}, {pg, "P"}}

	// Queriers with the largest corpora (paper: 5 queriers ≥ 300 policies).
	queriers := workload.TopQueriers(my.Policies, cfg.Queriers, 10)
	if len(queriers) == 0 {
		return nil, fmt.Errorf("experiment: no heavy queriers")
	}
	counts := workload.QuerierCounts(my.Policies)
	maxN := counts[queriers[len(queriers)-1]]
	sizes := scaleSizes(maxN, 10, maxi(5, maxN/10))

	for _, s := range sides {
		for _, q := range queriers {
			if err := cumulativeLoad(s.env.Store, s.env.Policies, q, sizes); err != nil {
				return nil, err
			}
		}
	}

	qAll := "SELECT * FROM " + workload.TableWiFi
	for _, size := range sizes {
		var biM, bpP, svM, svP time.Duration
		var n int
		for _, q := range queriers {
			qm := policy.Metadata{Querier: fmt.Sprintf("%s@%d", q, size), Purpose: "analytics"}
			mySess, pgSess := my.M.NewSession(qm), pg.M.NewSession(qm)
			a, _, err := timed(cfg.Reps, cfg.Timeout, func() error {
				return runStrategy(mySess, "BaselineI", qAll)
			})
			if err != nil {
				return nil, err
			}
			b, _, err := timed(cfg.Reps, cfg.Timeout, func() error {
				return runStrategy(pgSess, "BaselineP", qAll)
			})
			if err != nil {
				return nil, err
			}
			c, _, err := timed(cfg.Reps, cfg.Timeout, func() error {
				return runStrategy(mySess, "SIEVE", qAll)
			})
			if err != nil {
				return nil, err
			}
			d, _, err := timed(cfg.Reps, cfg.Timeout, func() error {
				return runStrategy(pgSess, "SIEVE", qAll)
			})
			if err != nil {
				return nil, err
			}
			biM += a
			bpP += b
			svM += c
			svP += d
			n++
		}
		dn := time.Duration(n)
		speedup := float64(bpP) / float64(maxDur(svP, time.Microsecond))
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", size),
			ms(biM / dn), ms(bpP / dn), ms(svM / dn), ms(svP / dn),
			fmt.Sprintf("%.2fx", speedup),
		})
	}
	return tab, nil
}

// MallScalability reproduces Figure 6 / Experiment 5: the SIEVE-vs-baseline
// speedup on the postgres dialect over the Mall dataset as cumulative shop
// policy sets grow (paper: 1.6× at 100 policies to 5.6× at 1,200, roughly
// linear).
func MallScalability(cfg Config) (*Table, error) {
	env, err := NewMallEnv(cfg, engine.Postgres())
	if err != nil {
		return nil, err
	}
	queriers := workload.TopQueriers(env.Policies, cfg.Queriers, 10)
	if len(queriers) == 0 {
		return nil, fmt.Errorf("experiment: no heavy shop queriers")
	}
	counts := workload.QuerierCounts(env.Policies)
	maxN := counts[queriers[len(queriers)-1]]
	sizes := scaleSizes(maxN, 12, maxi(5, maxN/12))
	for _, q := range queriers {
		if err := cumulativeLoad(env.Store, env.Policies, q, sizes); err != nil {
			return nil, err
		}
	}
	tab := &Table{
		ID:      "Figure 6",
		Title:   "Mall scalability on the postgres dialect, SELECT-ALL (ms)",
		Headers: []string{"policies", "BaselineP ms", "SIEVE ms", "speedup"},
		Notes:   []string{"paper: speedup grows ~linearly from 1.6x @100 to 5.6x @1200 policies"},
	}
	qAll := env.Mall.SelectAllQuery()
	for _, size := range sizes {
		var base, sieve time.Duration
		var n int
		for _, q := range queriers {
			qm := policy.Metadata{Querier: fmt.Sprintf("%s@%d", q, size), Purpose: "marketing"}
			sess := env.M.NewSession(qm)
			b, _, err := timed(cfg.Reps, cfg.Timeout, func() error {
				return runStrategy(sess, "BaselineP", qAll)
			})
			if err != nil {
				return nil, err
			}
			s, _, err := timed(cfg.Reps, cfg.Timeout, func() error {
				return runStrategy(sess, "SIEVE", qAll)
			})
			if err != nil {
				return nil, err
			}
			base += b
			sieve += s
			n++
		}
		dn := time.Duration(n)
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", size),
			ms(base / dn), ms(sieve / dn),
			fmt.Sprintf("%.2fx", float64(base)/float64(maxDur(sieve, time.Microsecond))),
		})
	}
	return tab, nil
}

// WorkerScaling measures the parallel guarded-scan operator's scaling
// curve: SELECT-ALL under a forced LinearScan strategy (so every measured
// query is a guarded sequential scan, the operator's target shape) at
// worker counts 1, 2, 4, …, NumCPU. Speedups are relative to workers=1;
// on a single-core host the curve is flat by construction.
func WorkerScaling(cfg Config) (*Table, error) {
	tab := &Table{
		ID:      "Workers",
		Title:   "Parallel guarded scan scaling, SELECT-ALL under LinearScan (ms)",
		Headers: []string{"workers", "avg ms", "speedup"},
		Notes: []string{
			fmt.Sprintf("host has %d CPU(s); wall-clock speedup requires GOMAXPROCS > 1", runtime.NumCPU()),
		},
	}
	counts := []int{1}
	for w := 2; w <= runtime.NumCPU(); w *= 2 {
		counts = append(counts, w)
	}
	if ncpu := runtime.NumCPU(); counts[len(counts)-1] != ncpu && ncpu > 1 {
		counts = append(counts, ncpu)
	}

	env, err := NewCampusEnv(cfg, engine.MySQL(), core.WithForcedStrategy(core.LinearScan))
	if err != nil {
		return nil, err
	}
	queriers := workload.TopQueriers(env.Policies, cfg.Queriers, 10)
	if len(queriers) == 0 {
		return nil, fmt.Errorf("experiment: no heavy queriers")
	}
	qAll := "SELECT * FROM " + workload.TableWiFi
	var base time.Duration
	for _, w := range counts {
		env.Campus.DB.ScanWorkers = w
		var total time.Duration
		var n int
		for _, q := range queriers {
			sess := env.M.NewSession(policy.Metadata{Querier: q, Purpose: "analytics"})
			avg, _, err := timed(cfg.Reps, cfg.Timeout, func() error {
				return runStrategy(sess, "SIEVE", qAll)
			})
			if err != nil {
				return nil, err
			}
			total += avg
			n++
		}
		avg := total / time.Duration(n)
		if w == 1 {
			base = avg
		}
		tab.Rows = append(tab.Rows, []string{
			fmt.Sprintf("%d", w),
			ms(avg),
			fmt.Sprintf("%.2fx", float64(base)/float64(maxDur(avg, time.Microsecond))),
		})
	}
	return tab, nil
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
