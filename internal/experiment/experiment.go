// Package experiment regenerates every table and figure of the paper's
// evaluation (§7) on the embedded engine: Figure 2 / Table 6 / Table 7
// (guard generation and quality), Figure 3 (Inline vs Δ), Figure 4
// (IndexQuery vs IndexGuards), Table 8 and Tables 9–11 (overall comparison
// against the baselines), Figure 5 (PostgreSQL), Figure 6 (Mall
// scalability), plus ablations of SIEVE's design choices. Each experiment
// returns a printable Table; cmd/sieve-bench assembles them into
// EXPERIMENTS.md-style output.
package experiment

import (
	"fmt"
	"strings"
	"time"

	"github.com/sieve-db/sieve/internal/core"
	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/policy"
	"github.com/sieve-db/sieve/internal/workload"
)

// Table is one experiment's result in the paper's tabular layout.
type Table struct {
	ID      string // "Figure 2", "Table 8", …
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Config scales an experiment run. Test configs finish in seconds; bench
// configs approximate the paper's corpus.
type Config struct {
	// Seed is the master seed every bench run is reproducible from; it
	// is recorded in the JSON artifacts. ApplySeed rebases the per-
	// generator seeds below on it.
	Seed            int64
	Campus          workload.CampusConfig
	Policy          workload.PolicyConfig
	Mall            workload.MallConfig
	Hospital        workload.HospitalConfig
	MallPerCustomer int
	// Reps is the measurement repetitions per query (paper: 5, warm).
	Reps int
	// QueriesPerCell is the number of query instances per (template,
	// class) cell.
	QueriesPerCell int
	// Timeout is the per-query budget; exceeding it records "TO" like the
	// paper's 30 s limit.
	Timeout time.Duration
	// Queriers is the number of measured queriers (paper: 5).
	Queriers int
	// SampleTuples bounds ground-truth sampling for quality metrics.
	SampleTuples int
	// Workers overrides the engine's parallel-scan worker budget for
	// every environment the experiment builds (0 keeps the engine
	// default, runtime.NumCPU()). The -workers flag of sieve-bench sets
	// it, adding a scaling dimension to the exp4/5 curves.
	Workers int
	// PolicyScalePolicies and PolicyScaleQueriers are the corpus- and
	// population-size sweep of the policyscale experiment (the
	// million-policy regime), over PolicyScaleGroups access profiles
	// with PolicyScaleZipf group-popularity skew.
	PolicyScalePolicies []int
	PolicyScaleQueriers []int
	PolicyScaleGroups   int
	PolicyScaleZipf     float64
	// RecoveryRecords is the WAL-length sweep of the recovery
	// experiment: each entry is a record count to load, snapshot, and
	// cold-recover (paper-scale target: 10⁴–10⁶).
	RecoveryRecords []int
	// LatencyIters is the per-query sample size of the latency
	// experiment (tracing off vs on over the examples corpus).
	LatencyIters int
	// TrafficWorkers is the concurrent querier count of the traffic
	// harness; TrafficOps is each worker's closed-loop op count.
	TrafficWorkers int
	TrafficOps     int
	// TrafficStreamLimit is how many rows a streaming op drains before
	// its early Close.
	TrafficStreamLimit int
	// TrafficZipf skews querier and query selection (s > 1).
	TrafficZipf float64
	// TrafficChurnHold is a churn grant's lifetime before revocation.
	TrafficChurnHold time.Duration
	// TrafficDenyEvery makes every Nth worker a default-deny querier.
	TrafficDenyEvery int
}

// ApplySeed rebases every generator seed in the config on one master
// seed, making a whole bench run reproducible from a single -seed flag.
// Seed 1 reproduces the default configs exactly.
func (c *Config) ApplySeed(seed int64) {
	c.Seed = seed
	c.Campus.Seed = seed
	c.Policy.Seed = seed + 1
	c.Mall.Seed = seed + 2
	c.Hospital.Seed = seed + 3
}

// TestConfig finishes in a few seconds; used by unit tests.
func TestConfig() Config {
	return Config{
		Seed:            1,
		Campus:          workload.TestCampusConfig(),
		Policy:          workload.TestPolicyConfig(),
		Mall:            workload.TestMallConfig(),
		Hospital:        workload.TestHospitalConfig(),
		MallPerCustomer: 6,
		Reps:            1,
		QueriesPerCell:  2,
		Timeout:         10 * time.Second,
		Queriers:        3,
		SampleTuples:    400,

		PolicyScalePolicies: []int{200, 1000},
		PolicyScaleQueriers: []int{200},
		PolicyScaleGroups:   10,
		PolicyScaleZipf:     1.3,

		RecoveryRecords: []int{1000, 5000},
		LatencyIters:    5,

		TrafficWorkers:     8,
		TrafficOps:         10,
		TrafficStreamLimit: 6,
		TrafficZipf:        1.3,
		TrafficChurnHold:   2 * time.Millisecond,
		TrafficDenyEvery:   4,
	}
}

// MediumConfig sits between TestConfig and BenchConfig: large enough for
// the paper's shapes to show, small enough for a full sweep in minutes.
func MediumConfig() Config {
	cfg := BenchConfig()
	cfg.Campus.Devices = 1500
	cfg.Campus.Days = 45
	cfg.Policy.AdvancedPolicies = 30
	cfg.Mall.Customers = 1200
	cfg.Mall.Days = 30
	cfg.Reps = 2
	cfg.QueriesPerCell = 2
	cfg.Queriers = 3
	cfg.Timeout = 20 * time.Second
	cfg.SampleTuples = 1500
	cfg.PolicyScalePolicies = []int{1000, 5000, 20000}
	cfg.PolicyScaleQueriers = []int{2000}
	cfg.PolicyScaleGroups = 50
	cfg.RecoveryRecords = []int{10000, 100000}
	cfg.LatencyIters = 15
	cfg.Hospital.Patients = 1200
	cfg.Hospital.Days = 30
	cfg.TrafficWorkers = 64
	cfg.TrafficOps = 25
	return cfg
}

// BenchConfig approximates the paper's scale (≈1/8 of the TIPPERS corpus).
func BenchConfig() Config {
	return Config{
		Seed:            1,
		Campus:          workload.BenchCampusConfig(),
		Policy:          workload.BenchPolicyConfig(),
		Mall:            workload.BenchMallConfig(),
		Hospital:        workload.BenchHospitalConfig(),
		MallPerCustomer: 8,
		Reps:            3,
		QueriesPerCell:  3,
		Timeout:         30 * time.Second,
		Queriers:        5,
		SampleTuples:    3000,

		// The acceptance shape of the million-policy regime: 10⁴
		// queriers over ≤100 profiles, policy counts 10³ → 10⁵.
		PolicyScalePolicies: []int{1000, 10000, 100000},
		PolicyScaleQueriers: []int{1000, 10000},
		PolicyScaleGroups:   100,
		PolicyScaleZipf:     1.2,

		// The ISSUE's durability sweep: cold recovery at 10⁴–10⁶
		// logged records.
		RecoveryRecords: []int{10000, 100000, 1000000},

		LatencyIters: 31,

		// Hundreds of concurrent queriers per cell; 2 modes × 3
		// workloads puts the run into the thousands of sessions.
		TrafficWorkers:     320,
		TrafficOps:         40,
		TrafficStreamLimit: 8,
		TrafficZipf:        1.3,
		TrafficChurnHold:   time.Millisecond,
		TrafficDenyEvery:   8,
	}
}

// CampusEnv bundles a generated campus, its policy corpus, and a SIEVE
// middleware over it.
type CampusEnv struct {
	Campus   *workload.Campus
	Policies []*policy.Policy
	Store    *policy.Store
	M        *core.Middleware
}

// NewCampusEnv builds the standard experiment environment on a dialect.
func NewCampusEnv(cfg Config, dialect engine.Dialect, opts ...core.Option) (*CampusEnv, error) {
	c, err := workload.BuildCampus(cfg.Campus, dialect)
	if err != nil {
		return nil, err
	}
	if cfg.Workers > 0 {
		c.DB.ScanWorkers = cfg.Workers
	}
	ps := c.GeneratePolicies(cfg.Policy)
	store, err := policy.NewStore(c.DB)
	if err != nil {
		return nil, err
	}
	if err := store.BulkLoad(ps); err != nil {
		return nil, err
	}
	opts = append([]core.Option{core.WithGroups(c.Groups())}, opts...)
	m, err := core.New(store, opts...)
	if err != nil {
		return nil, err
	}
	if err := m.Protect(workload.TableWiFi); err != nil {
		return nil, err
	}
	return &CampusEnv{Campus: c, Policies: ps, Store: store, M: m}, nil
}

// MallEnv bundles the mall equivalents.
type MallEnv struct {
	Mall     *workload.Mall
	Policies []*policy.Policy
	Store    *policy.Store
	M        *core.Middleware
}

// NewMallEnv builds the mall experiment environment.
func NewMallEnv(cfg Config, dialect engine.Dialect, opts ...core.Option) (*MallEnv, error) {
	ml, err := workload.BuildMall(cfg.Mall, dialect)
	if err != nil {
		return nil, err
	}
	if cfg.Workers > 0 {
		ml.DB.ScanWorkers = cfg.Workers
	}
	ps := ml.GeneratePolicies(cfg.Mall.Seed+1, cfg.MallPerCustomer)
	store, err := policy.NewStore(ml.DB)
	if err != nil {
		return nil, err
	}
	if err := store.BulkLoad(ps); err != nil {
		return nil, err
	}
	m, err := core.New(store, opts...)
	if err != nil {
		return nil, err
	}
	if err := m.Protect(workload.TableMallWiFi); err != nil {
		return nil, err
	}
	return &MallEnv{Mall: ml, Policies: ps, Store: store, M: m}, nil
}

// HospitalEnv bundles the hospital equivalents.
type HospitalEnv struct {
	Hospital *workload.Hospital
	Policies []*policy.Policy
	Store    *policy.Store
	M        *core.Middleware
}

// NewHospitalEnv builds the hospital experiment environment: the deep
// group hierarchy (hospital → department → ward → role) resolves through
// the middleware's group support, and the vitals relation is protected.
func NewHospitalEnv(cfg Config, dialect engine.Dialect, opts ...core.Option) (*HospitalEnv, error) {
	h, err := workload.BuildHospital(cfg.Hospital, dialect)
	if err != nil {
		return nil, err
	}
	if cfg.Workers > 0 {
		h.DB.ScanWorkers = cfg.Workers
	}
	ps := h.GeneratePolicies(cfg.Hospital.Seed + 1)
	store, err := policy.NewStore(h.DB)
	if err != nil {
		return nil, err
	}
	if err := store.BulkLoad(ps); err != nil {
		return nil, err
	}
	opts = append([]core.Option{core.WithGroups(h.Groups())}, opts...)
	m, err := core.New(store, opts...)
	if err != nil {
		return nil, err
	}
	if err := m.Protect(workload.TableVitals); err != nil {
		return nil, err
	}
	return &HospitalEnv{Hospital: h, Policies: ps, Store: store, M: m}, nil
}

// timed measures fn averaged over reps after one warm-up run, honouring the
// timeout ("TO" semantics: the paper reports TO when every query in a group
// timed out, t+ when some did).
func timed(reps int, timeout time.Duration, fn func() error) (avg time.Duration, timedOut bool, err error) {
	if reps < 1 {
		reps = 1
	}
	start := time.Now()
	if err := fn(); err != nil {
		return 0, false, err
	}
	if time.Since(start) > timeout {
		return time.Since(start), true, nil
	}
	var total time.Duration
	for i := 0; i < reps; i++ {
		s := time.Now()
		if err := fn(); err != nil {
			return 0, false, err
		}
		d := time.Since(s)
		total += d
		if d > timeout {
			return d, true, nil
		}
	}
	return total / time.Duration(reps), false, nil
}

// ms formats a duration in milliseconds with two decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

// cell renders a timing cell with the paper's TO convention.
func cell(avg time.Duration, timedOut bool, anyTimedOut bool) string {
	switch {
	case timedOut:
		return "TO"
	case anyTimedOut:
		return ms(avg) + "+"
	default:
		return ms(avg)
	}
}
