package experiment

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestPolicyScale(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_policy_scale.json")
	tab, err := PolicyScaleToFile(TestConfig(), path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty PolicyScale table")
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res policyScaleResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("BENCH_policy_scale.json does not parse: %v", err)
	}
	if len(res.Cells) != len(tab.Rows) {
		t.Fatalf("cells = %d, rows = %d", len(res.Cells), len(tab.Rows))
	}
	for _, c := range res.Cells {
		// The regime's cardinality claim: states and plans are bounded
		// by the profile count, not the querier population.
		if c.Profiles >= c.Queriers {
			t.Errorf("%dp/%dq: profiles (%d) not smaller than queriers", c.Policies, c.Queriers, c.Profiles)
		}
		if c.GuardStates > int64(c.Profiles) {
			t.Errorf("%dp/%dq: guard states %d exceed profiles %d", c.Policies, c.Queriers, c.GuardStates, c.Profiles)
		}
		if c.PlansCached > c.Profiles {
			t.Errorf("%dp/%dq: cached plans %d exceed profiles %d", c.Policies, c.Queriers, c.PlansCached, c.Profiles)
		}
		if c.SteadyHitRate < 0.99 {
			t.Errorf("%dp/%dq: steady-state hit rate %.3f, want ~1", c.Policies, c.Queriers, c.SteadyHitRate)
		}
		// Churn blast radius: one AddPolicy rebuilds at most the touched
		// signature's plan and invalidates fewer claims than there are
		// queriers (only the touched group's members).
		if c.ChurnPlansRebuilt > 1 {
			t.Errorf("%dp/%dq: churn rebuilt %d plans, want <= 1", c.Policies, c.Queriers, c.ChurnPlansRebuilt)
		}
		if c.ChurnClaimsInvalidated >= int64(c.Queriers) {
			t.Errorf("%dp/%dq: churn invalidated %d claims out of %d queriers — not scoped",
				c.Policies, c.Queriers, c.ChurnClaimsInvalidated, c.Queriers)
		}
	}
}
