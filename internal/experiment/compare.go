package experiment

import (
	"encoding/json"
	"fmt"
	"os"
)

// CompareOptions sets the tolerance thresholds for the traffic baseline
// gate. The defaults are deliberately loose — CI machines differ wildly,
// so the gate is meant to catch order-of-magnitude regressions and
// structural rot (missing cells, violations, errors), not single-digit
// percent drift.
type CompareOptions struct {
	// MaxLatencyRatio fails a cell whose candidate p95 exceeds
	// baseline p95 × ratio.
	MaxLatencyRatio float64
	// MinThroughputRatio fails a cell whose candidate ops/sec drops
	// below baseline ops/sec × ratio.
	MinThroughputRatio float64
}

// DefaultCompareOptions is the CI gate configuration.
func DefaultCompareOptions() CompareOptions {
	return CompareOptions{MaxLatencyRatio: 25, MinThroughputRatio: 0.04}
}

// CompareTraffic diffs a candidate traffic run against a baseline and
// returns every breach found. An empty slice means the candidate passes:
// structurally sound (all baseline cells present, zero violations, zero
// errors, monotone percentiles, checker active) and within the perf
// tolerances.
func CompareTraffic(base, cand *TrafficResult, opts CompareOptions) []string {
	var breaches []string
	fail := func(format string, args ...any) {
		breaches = append(breaches, fmt.Sprintf(format, args...))
	}
	if opts.MaxLatencyRatio <= 0 {
		opts.MaxLatencyRatio = DefaultCompareOptions().MaxLatencyRatio
	}
	if opts.MinThroughputRatio <= 0 {
		opts.MinThroughputRatio = DefaultCompareOptions().MinThroughputRatio
	}

	cells := map[string]*TrafficCell{}
	for i := range cand.Cells {
		c := &cand.Cells[i]
		cells[c.Workload+"/"+c.Mode] = c
	}
	for i := range base.Cells {
		b := &base.Cells[i]
		key := b.Workload + "/" + b.Mode
		c := cells[key]
		if c == nil {
			fail("%s: cell present in baseline but missing from candidate", key)
			continue
		}
		if c.Errors > 0 {
			fail("%s: %d op errors", key, c.Errors)
		}
		if n := c.Violations.Total(); n > 0 {
			fail("%s: %d invariant violations %+v", key, n, c.Violations)
		}
		if c.Ops <= 0 {
			fail("%s: no ops completed", key)
			continue
		}
		if !(c.P50us <= c.P95us && c.P95us <= c.P99us) {
			fail("%s: percentiles not monotone: p50=%.0f p95=%.0f p99=%.0f", key, c.P50us, c.P95us, c.P99us)
		}
		if c.RowsChecked <= 0 {
			fail("%s: invariant checker saw no rows", key)
		}
		if c.ChurnAdds <= 0 || c.ChurnRevokes <= 0 {
			fail("%s: churn did not run (adds=%d revokes=%d)", key, c.ChurnAdds, c.ChurnRevokes)
		}
		if b.P95us > 0 && c.P95us > b.P95us*opts.MaxLatencyRatio {
			fail("%s: p95 regression: %.0fµs vs baseline %.0fµs (limit ×%.1f)",
				key, c.P95us, b.P95us, opts.MaxLatencyRatio)
		}
		if b.OpsPerSec > 0 && c.OpsPerSec < b.OpsPerSec*opts.MinThroughputRatio {
			fail("%s: throughput collapse: %.1f ops/s vs baseline %.1f (floor ×%.2f)",
				key, c.OpsPerSec, b.OpsPerSec, opts.MinThroughputRatio)
		}
	}
	if len(cand.ViolationSamples) > 0 {
		fail("candidate carries violation samples: %v", cand.ViolationSamples)
	}
	return breaches
}

// CompareTrafficFiles runs CompareTraffic over two BENCH_traffic.json
// files and errors if the candidate breaches the gate.
func CompareTrafficFiles(basePath, candPath string, opts CompareOptions) error {
	read := func(path string) (*TrafficResult, error) {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var r TrafficResult
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, fmt.Errorf("%s does not parse: %w", path, err)
		}
		if len(r.Cells) == 0 {
			return nil, fmt.Errorf("%s has no cells", path)
		}
		return &r, nil
	}
	base, err := read(basePath)
	if err != nil {
		return err
	}
	cand, err := read(candPath)
	if err != nil {
		return err
	}
	if breaches := CompareTraffic(base, cand, opts); len(breaches) > 0 {
		for _, b := range breaches {
			fmt.Fprintln(os.Stderr, "bench_compare: "+b)
		}
		return fmt.Errorf("traffic baseline gate: %d breaches", len(breaches))
	}
	return nil
}
