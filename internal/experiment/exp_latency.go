package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/obs"
	"github.com/sieve-db/sieve/internal/policy"
	"github.com/sieve-db/sieve/internal/workload"
)

// LatencyFile is where Latency writes its machine-readable results.
const LatencyFile = "BENCH_latency.json"

// latencyCell is one corpus query's tracing-off vs tracing-on comparison
// in BENCH_latency.json. Durations are microseconds. "Off" is the
// production path — every instrumentation site sees a nil span and takes
// no timestamp; "on" runs the same query under a full obs.Span tree.
type latencyCell struct {
	Name   string  `json:"name"`
	Rows   int     `json:"rows"`
	OffP50 float64 `json:"off_p50_us"`
	OffP95 float64 `json:"off_p95_us"`
	OffP99 float64 `json:"off_p99_us"`
	OnP50  float64 `json:"on_p50_us"`
	OnP95  float64 `json:"on_p95_us"`
	OnP99  float64 `json:"on_p99_us"`
	// OverheadP50Pct is (on p50 − off p50) / off p50 × 100: what turning
	// the span tree on costs this query shape at the median.
	OverheadP50Pct float64 `json:"overhead_p50_pct"`
	// Phases is the number of distinct phase names the traced runs
	// produced, a drift canary for the lifecycle coverage.
	Phases int `json:"phases"`
}

// latencyResult is the BENCH_latency.json document.
type latencyResult struct {
	Seed    int64  `json:"seed"`
	Iters   int    `json:"iters"`
	Querier string `json:"querier"`
	// MedianOverheadPct aggregates OverheadP50Pct across the corpus — the
	// headline "what does tracing cost" number.
	MedianOverheadPct float64       `json:"median_overhead_pct"`
	Cells             []latencyCell `json:"cells"`
}

// Latency measures per-query latency over the examples corpus with
// tracing off (the nil-span production path) and on (a full span tree per
// execution), reporting p50/p95/p99 for both and the median-of-medians
// overhead. Results also land in BENCH_latency.json, written and
// re-parsed so a malformed document fails the run.
func Latency(cfg Config) (*Table, error) {
	return LatencyToFile(cfg, LatencyFile)
}

// LatencyToFile is Latency writing its JSON document to path.
func LatencyToFile(cfg Config, path string) (*Table, error) {
	if cfg.LatencyIters < 1 {
		return nil, fmt.Errorf("experiment: latency iteration count is empty (set LatencyIters)")
	}
	env, err := NewCampusEnv(cfg, engine.MySQL())
	if err != nil {
		return nil, err
	}
	querier := workload.TopQueriers(env.Policies, 1, 1)
	if len(querier) == 0 {
		return nil, fmt.Errorf("experiment: no queriers hold policies")
	}
	sess := env.M.NewSession(policy.Metadata{Querier: querier[0], Purpose: "analytics"})
	ctx := context.Background()

	tab := &Table{
		ID:      "Latency",
		Title:   "Per-query latency: tracing off vs on (µs)",
		Headers: []string{"query", "rows", "off p50", "off p95", "off p99", "on p50", "on p99", "overhead"},
		Notes: []string{
			"off = the production path (nil span, zero timestamps); on = a full per-phase span tree built per execution",
			"iterations interleave off/on so both samples see the same cache and scheduler conditions",
		},
	}
	res := latencyResult{Seed: cfg.Seed, Iters: cfg.LatencyIters, Querier: querier[0]}
	for _, q := range env.Campus.CorpusQueries() {
		// Warm the guard cache and plan state so both samples measure
		// steady-state execution, then record the row count once.
		base, err := sess.Execute(ctx, q.SQL)
		if err != nil {
			return nil, fmt.Errorf("experiment: latency %s: %w", q.Name, err)
		}
		off := make([]time.Duration, 0, cfg.LatencyIters)
		on := make([]time.Duration, 0, cfg.LatencyIters)
		phases := map[string]bool{}
		for i := 0; i < cfg.LatencyIters; i++ {
			start := time.Now()
			if _, err := sess.Execute(ctx, q.SQL); err != nil {
				return nil, fmt.Errorf("experiment: latency %s (off): %w", q.Name, err)
			}
			off = append(off, time.Since(start))

			tr := obs.NewTrace("query")
			tctx := obs.WithSpan(ctx, tr)
			start = time.Now()
			if _, err := sess.Execute(tctx, q.SQL); err != nil {
				return nil, fmt.Errorf("experiment: latency %s (on): %w", q.Name, err)
			}
			tr.Finish()
			on = append(on, time.Since(start))
			for _, p := range tr.Node().Phases() {
				phases[p] = true
			}
		}
		cell := latencyCell{
			Name: q.Name, Rows: len(base.Rows), Phases: len(phases),
			OffP50: latencyPercentileUS(off, 50),
			OffP95: latencyPercentileUS(off, 95),
			OffP99: latencyPercentileUS(off, 99),
			OnP50:  latencyPercentileUS(on, 50),
			OnP95:  latencyPercentileUS(on, 95),
			OnP99:  latencyPercentileUS(on, 99),
		}
		if cell.OffP50 > 0 {
			cell.OverheadP50Pct = (cell.OnP50 - cell.OffP50) / cell.OffP50 * 100
		}
		res.Cells = append(res.Cells, cell)
		tab.Rows = append(tab.Rows, []string{
			q.Name,
			fmt.Sprintf("%d", cell.Rows),
			fmt.Sprintf("%.0f", cell.OffP50),
			fmt.Sprintf("%.0f", cell.OffP95),
			fmt.Sprintf("%.0f", cell.OffP99),
			fmt.Sprintf("%.0f", cell.OnP50),
			fmt.Sprintf("%.0f", cell.OnP99),
			fmt.Sprintf("%+.1f%%", cell.OverheadP50Pct),
		})
	}
	overheads := make([]float64, len(res.Cells))
	for i, c := range res.Cells {
		overheads[i] = c.OverheadP50Pct
	}
	sort.Float64s(overheads)
	res.MedianOverheadPct = overheads[len(overheads)/2]
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("median p50 overhead of tracing on: %+.1f%% over %d corpus queries, %d iterations each",
			res.MedianOverheadPct, len(res.Cells), cfg.LatencyIters))

	out, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return nil, err
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var check latencyResult
	if err := json.Unmarshal(raw, &check); err != nil {
		return nil, fmt.Errorf("experiment: %s does not parse: %w", path, err)
	}
	if len(check.Cells) == 0 {
		return nil, fmt.Errorf("experiment: %s has no cells", path)
	}
	tab.Notes = append(tab.Notes, fmt.Sprintf("wrote %s (%d cells)", path, len(check.Cells)))
	return tab, nil
}

// latencyPercentileUS reads the p-th percentile (0..100) of an unsorted
// duration sample in microseconds.
func latencyPercentileUS(sample []time.Duration, p int) float64 {
	if len(sample) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(sample))
	copy(sorted, sample)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Microsecond)
}
