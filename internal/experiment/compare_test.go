package experiment

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// compareFixture is a plausible two-cell traffic result for gate tests.
func compareFixture() TrafficResult {
	cell := func(wl, mode string) TrafficCell {
		return TrafficCell{
			Workload: wl, Mode: mode, Workers: 8,
			Ops: 80, Rows: 4000, P50us: 100, P95us: 400, P99us: 900,
			OpsPerSec: 2000, RowsPerSec: 100000,
			ChurnAdds: 20, ChurnRevokes: 20, RowsChecked: 3000,
		}
	}
	return TrafficResult{
		Seed: 1, Workers: 8, OpsPerWorker: 10,
		Cells: []TrafficCell{cell("campus", "inproc"), cell("campus", "server")},
	}
}

// TestCompareTraffic drives the baseline gate through its pass and every
// fail mode the CI step relies on.
func TestCompareTraffic(t *testing.T) {
	opts := DefaultCompareOptions()
	base := compareFixture()

	t.Run("identical passes", func(t *testing.T) {
		cand := compareFixture()
		if br := CompareTraffic(&base, &cand, opts); len(br) != 0 {
			t.Fatalf("identical runs breached: %v", br)
		}
	})
	t.Run("mild drift passes", func(t *testing.T) {
		cand := compareFixture()
		cand.Cells[0].P95us *= 3
		cand.Cells[0].P99us *= 3
		cand.Cells[1].OpsPerSec /= 3
		if br := CompareTraffic(&base, &cand, opts); len(br) != 0 {
			t.Fatalf("in-tolerance drift breached: %v", br)
		}
	})
	breach := func(name string, mutate func(*TrafficResult), want string) {
		t.Run(name, func(t *testing.T) {
			cand := compareFixture()
			mutate(&cand)
			br := CompareTraffic(&base, &cand, opts)
			if len(br) == 0 {
				t.Fatalf("%s not flagged", name)
			}
			if !strings.Contains(strings.Join(br, "\n"), want) {
				t.Fatalf("%s: breaches %v do not mention %q", name, br, want)
			}
		})
	}
	breach("latency regression", func(c *TrafficResult) { c.Cells[0].P95us = 400 * 26 }, "p95 regression")
	breach("throughput collapse", func(c *TrafficResult) { c.Cells[1].OpsPerSec = 2 }, "throughput collapse")
	breach("missing cell", func(c *TrafficResult) { c.Cells = c.Cells[:1] }, "missing from candidate")
	breach("violations", func(c *TrafficResult) { c.Cells[0].Violations.RevokedRows = 1 }, "invariant violations")
	breach("op errors", func(c *TrafficResult) { c.Cells[0].Errors = 3 }, "op errors")
	breach("dead checker", func(c *TrafficResult) { c.Cells[0].RowsChecked = 0 }, "checker saw no rows")
	breach("no churn", func(c *TrafficResult) { c.Cells[0].ChurnAdds = 0 }, "churn did not run")
	breach("broken percentiles", func(c *TrafficResult) { c.Cells[0].P50us = 1e9 }, "not monotone")
}

// TestCompareTrafficFiles pins the file-level entry point the CI step
// invokes via scripts/bench_compare.go.
func TestCompareTrafficFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, r TrafficResult) string {
		raw, err := json.MarshalIndent(&r, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	basePath := write("base.json", compareFixture())
	if err := CompareTrafficFiles(basePath, write("same.json", compareFixture()), CompareOptions{}); err != nil {
		t.Fatalf("identical files breached: %v", err)
	}
	bad := compareFixture()
	bad.Cells[0].Violations.UnjustifiedRows = 2
	if err := CompareTrafficFiles(basePath, write("bad.json", bad), CompareOptions{}); err == nil {
		t.Fatal("violating candidate passed the gate")
	}
	if err := CompareTrafficFiles(basePath, filepath.Join(dir, "absent.json"), CompareOptions{}); err == nil {
		t.Fatal("missing candidate file passed the gate")
	}
	if err := os.WriteFile(filepath.Join(dir, "garbage.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CompareTrafficFiles(basePath, filepath.Join(dir, "garbage.json"), CompareOptions{}); err == nil {
		t.Fatal("unparseable candidate passed the gate")
	}
}
