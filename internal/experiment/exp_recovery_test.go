package experiment

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRecoveryArtifact runs the durability benchmark at test scale and
// asserts the BENCH_recovery.json document — the artifact downstream
// tooling consumes — parses and carries sane numbers.
func TestRecoveryArtifact(t *testing.T) {
	cfg := TestConfig()
	cfg.RecoveryRecords = []int{500, 2000}
	path := filepath.Join(t.TempDir(), "BENCH_recovery.json")
	tab, err := RecoveryToFile(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(cfg.RecoveryRecords) {
		t.Fatalf("table has %d rows, want %d", len(tab.Rows), len(cfg.RecoveryRecords))
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res recoveryResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if res.Table != recoveryTable {
		t.Fatalf("artifact table = %q, want %q", res.Table, recoveryTable)
	}
	if len(res.Cells) != len(cfg.RecoveryRecords) {
		t.Fatalf("artifact has %d cells, want %d", len(res.Cells), len(cfg.RecoveryRecords))
	}
	for i, cell := range res.Cells {
		if cell.Records != cfg.RecoveryRecords[i] {
			t.Fatalf("cell %d: records = %d, want %d", i, cell.Records, cfg.RecoveryRecords[i])
		}
		if cell.WALBytes <= 0 || cell.SnapshotBytes <= 0 {
			t.Fatalf("cell %d: empty artifact sizes: wal=%d snap=%d", i, cell.WALBytes, cell.SnapshotBytes)
		}
		if cell.AppendUS <= 0 || cell.ColdRecoveryMS <= 0 || cell.ReplayPerSec <= 0 ||
			cell.SnapshotMS <= 0 || cell.SnapshotMBps <= 0 || cell.RestoreMS <= 0 {
			t.Fatalf("cell %d: non-positive measurement: %+v", i, cell)
		}
	}
	// More records must mean a longer log: the sweep actually swept.
	if res.Cells[0].WALBytes >= res.Cells[1].WALBytes {
		t.Fatalf("WAL did not grow with record count: %d then %d bytes",
			res.Cells[0].WALBytes, res.Cells[1].WALBytes)
	}

	// The sweep must refuse to run empty rather than write a hollow file.
	cfg.RecoveryRecords = nil
	if _, err := RecoveryToFile(cfg, filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Fatal("empty sweep produced an artifact")
	}
}
