package experiment

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestLatencyArtifact runs the observability-overhead benchmark at test
// scale and asserts the BENCH_latency.json document — the artifact
// downstream tooling consumes — parses and carries sane numbers.
func TestLatencyArtifact(t *testing.T) {
	cfg := TestConfig()
	cfg.LatencyIters = 3
	path := filepath.Join(t.TempDir(), "BENCH_latency.json")
	tab, err := LatencyToFile(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("latency table is empty")
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res latencyResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if res.Iters != cfg.LatencyIters {
		t.Fatalf("artifact iters = %d, want %d", res.Iters, cfg.LatencyIters)
	}
	if res.Querier == "" {
		t.Fatal("artifact names no querier")
	}
	if len(res.Cells) != len(tab.Rows) {
		t.Fatalf("artifact has %d cells, table has %d rows", len(res.Cells), len(tab.Rows))
	}
	for i, cell := range res.Cells {
		if cell.Name == "" {
			t.Fatalf("cell %d has no query name", i)
		}
		if cell.OffP50 <= 0 || cell.OnP50 <= 0 {
			t.Fatalf("cell %d (%s): non-positive p50: off=%f on=%f", i, cell.Name, cell.OffP50, cell.OnP50)
		}
		if cell.OffP95 < cell.OffP50 || cell.OnP95 < cell.OnP50 ||
			cell.OffP99 < cell.OffP95 || cell.OnP99 < cell.OnP95 {
			t.Fatalf("cell %d (%s): percentiles not monotone: %+v", i, cell.Name, cell)
		}
		// Every traced execution must produce a real span tree; corpus
		// queries over the protected relation hit at least parse, rewrite,
		// and scan.
		if cell.Phases < 3 {
			t.Fatalf("cell %d (%s): traced runs saw only %d phases", i, cell.Name, cell.Phases)
		}
	}

	// The sweep must refuse to run unsized rather than write a hollow file.
	cfg.LatencyIters = 0
	if _, err := LatencyToFile(cfg, filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Fatal("zero-iteration sweep produced an artifact")
	}
}
