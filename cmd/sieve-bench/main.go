// Command sieve-bench regenerates the paper's evaluation tables and
// figures (§7) on the embedded engine and prints them in the paper's
// layout. Use -list to see the experiment ids, -scale to pick corpus size.
//
//	sieve-bench -scale test -run all
//	sieve-bench -scale bench -run fig5,fig6
//	sieve-bench -run traffic -seed 1
//	sieve-bench -micro
//	sieve-bench -backend fake-postgres
//
// -seed drives every workload generator and the traffic harness from one
// master seed, recorded in the BENCH_*.json artifacts.
//
// -run traffic is the closed-loop load harness: concurrent Zipf-skewed
// queriers mix streaming, exhaustive, prepared, and backend-shipped
// queries over the campus, mall, and hospital workloads — in process and
// through a real sieve-server — under live policy churn, with every
// returned row invariant-checked. See docs/benchmarks.md.
//
// -micro measures the execution-surface amortisations instead: prepared
// statements (parse + rewrite paid once) versus per-call Execute, and
// streaming LIMIT termination versus full materialisation.
//
// -backend runs the examples corpus through an execution backend —
// embedded, fake-mysql / fake-postgres (the recording fake driver, seeded
// with the embedded engine's rows so the full encode → SQL → decode wire
// path is exercised and verified), or driver://dsn for a live server with
// a compiled-in driver — and reports per-query row parity plus the
// backend's wire counters.
//
// -server boots an in-process sieve-server on a loopback port and runs
// the examples corpus through the HTTP client against the same queries
// in process, verifying row parity and reporting per-query p50/p95 for
// both paths — the protocol's overhead, isolated. Results also land in
// BENCH_server.json.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"reflect"
	"sort"
	"strings"
	"time"

	sieve "github.com/sieve-db/sieve"
	"github.com/sieve-db/sieve/client"
	"github.com/sieve-db/sieve/internal/backend"
	"github.com/sieve-db/sieve/internal/backend/backendtest"
	"github.com/sieve-db/sieve/internal/cli"
	"github.com/sieve-db/sieve/internal/experiment"
	"github.com/sieve-db/sieve/internal/server"
	"github.com/sieve-db/sieve/internal/workload"
)

type exp struct {
	id   string
	desc string
	run  func(experiment.Config) (*experiment.Table, error)
}

var experiments = []exp{
	{"fig2", "Figure 2: guard generation cost", experiment.GuardGenCost},
	{"table6", "Table 6: guard quality statistics", experiment.GuardQuality},
	{"table7", "Table 7: guard-count × cardinality quadrants", experiment.GuardQuadrants},
	{"fig3", "Figure 3: Inline vs Δ operator", experiment.InlineVsDelta},
	{"fig4", "Figure 4: IndexQuery vs IndexGuards", experiment.IndexChoice},
	{"table8", "Table 8: overall comparison (Q1–Q3)", experiment.OverallComparison},
	{"table9", "Table 9: Q1 by querier profile", func(c experiment.Config) (*experiment.Table, error) {
		return experiment.OverallByProfile(c, workload.Q1)
	}},
	{"table10", "Table 10: Q2 by querier profile", func(c experiment.Config) (*experiment.Table, error) {
		return experiment.OverallByProfile(c, workload.Q2)
	}},
	{"table11", "Table 11: Q3 by querier profile", func(c experiment.Config) (*experiment.Table, error) {
		return experiment.OverallByProfile(c, workload.Q3)
	}},
	{"fig5", "Figure 5: MySQL vs PostgreSQL dialects", experiment.PostgresComparison},
	{"fig6", "Figure 6: Mall scalability", experiment.MallScalability},
	{"ablation", "Ablations of SIEVE's design choices", experiment.Ablations},
	{"dynamic", "Section 6: eager vs deferred regeneration", func(c experiment.Config) (*experiment.Table, error) {
		return experiment.DynamicRegeneration(c, 10)
	}},
	{"workers", "Parallel guarded scan scaling (1..NumCPU workers)", experiment.WorkerScaling},
	{"vector", "Vectorised vs row-at-a-time guard evaluation", experiment.VectorComparison},
	{"policyscale", "Million-policy regime: signature-shared plans, scoped invalidation", experiment.PolicyScale},
	{"recovery", "Durability: WAL append, snapshot MB/s, replay rec/s, cold recovery", experiment.Recovery},
	{"latency", "Per-query latency over the examples corpus, tracing off vs on", experiment.Latency},
	{"traffic", "Heavy-traffic mixed workload under churn, invariant-checked", experiment.Traffic},
}

func main() {
	fs, opts := cli.BenchFlags()
	_ = fs.Parse(os.Args[1:])

	if opts.List {
		for _, e := range experiments {
			fmt.Printf("%-10s %s\n", e.id, e.desc)
		}
		return
	}
	if opts.Micro {
		if err := runMicro(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if opts.Backend != "" {
		if err := runBackendCorpus(opts.Backend); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if opts.Server {
		if err := runServerBench(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var cfg experiment.Config
	switch opts.Scale {
	case "test":
		cfg = experiment.TestConfig()
	case "medium":
		cfg = experiment.MediumConfig()
	case "bench":
		cfg = experiment.BenchConfig()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", opts.Scale)
		os.Exit(2)
	}
	cfg.Workers = opts.Workers
	cfg.ApplySeed(opts.Seed)

	wanted := map[string]bool{}
	if opts.Run != "all" {
		for _, id := range strings.Split(opts.Run, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}

	fmt.Printf("sieve-bench scale=%s seed=%d (devices=%d days=%d)\n\n",
		opts.Scale, cfg.Seed, cfg.Campus.Devices, cfg.Campus.Days)
	failed := 0
	for _, e := range experiments {
		if len(wanted) > 0 && !wanted[e.id] {
			continue
		}
		start := time.Now()
		tab, err := e.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			failed++
			continue
		}
		fmt.Println(tab.String())
		fmt.Printf("(%s completed in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runMicro measures what the query execution surface amortises: the
// parse+rewrite per call that Stmt caches, and the scan work a streamed
// LIMIT avoids versus materialising the full result.
func runMicro() error {
	env, err := experiment.NewCampusEnv(experiment.TestConfig(), sieve.MySQL())
	if err != nil {
		return err
	}
	querier := workload.TopQueriers(env.Policies, 1, 1)[0]
	sess := env.M.NewSession(sieve.Metadata{Querier: querier, Purpose: "analytics"})
	q := "SELECT * FROM " + workload.TableWiFi
	ctx := context.Background()
	const iters = 200

	// Warm the guard cache so both paths measure rewrite+execute only.
	if _, err := sess.Execute(ctx, q); err != nil {
		return err
	}

	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := env.M.Execute(q, sess.Metadata()); err != nil {
			return err
		}
	}
	perExec := time.Since(start) / iters

	stmt, err := env.M.Prepare(q)
	if err != nil {
		return err
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := stmt.Execute(ctx, sess); err != nil {
			return err
		}
	}
	perPrepared := time.Since(start) / iters

	fmt.Printf("execute (parse+rewrite per call) : %v/op\n", perExec)
	fmt.Printf("prepared (rewrite cached, %d uses): %v/op (%.2fx)\n",
		stmt.Rewrites(), perPrepared, float64(perExec)/float64(perPrepared))

	env.Campus.DB.Counters.Reset()
	rows, err := sess.Query(ctx, q)
	if err != nil {
		return err
	}
	for i := 0; i < 10 && rows.Next(); i++ {
	}
	if err := rows.Err(); err != nil {
		return err
	}
	rows.Close()
	streamed := env.Campus.DB.Counters.TuplesRead

	env.Campus.DB.Counters.Reset()
	if _, err := sess.Execute(ctx, q); err != nil {
		return err
	}
	full := env.Campus.DB.Counters.TuplesRead
	fmt.Printf("streaming 10 rows reads %d tuples; materialising reads %d\n", streamed, full)
	return nil
}

// serverBenchStat is one corpus query's wire-vs-in-process comparison in
// BENCH_server.json. Durations are microseconds.
type serverBenchStat struct {
	Name     string  `json:"name"`
	Rows     int     `json:"rows"`
	LocalP50 float64 `json:"local_p50_us"`
	LocalP95 float64 `json:"local_p95_us"`
	WireP50  float64 `json:"wire_p50_us"`
	WireP95  float64 `json:"wire_p95_us"`
	Parity   bool    `json:"parity"`
}

// percentileUS reads the p-th percentile (0..100) of a sorted duration
// slice in microseconds.
func percentileUS(sorted []time.Duration, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i]) / float64(time.Microsecond)
}

// runServerBench measures what the network hop costs: the examples
// corpus through a real sieve-server over loopback TCP — auth, NDJSON
// encode, HTTP framing, decode — against the identical queries executed
// in process on the same middleware, with row parity enforced between
// the two paths before any number is reported.
func runServerBench() error {
	demo, err := workload.NewDemo(sieve.MySQL())
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{Middleware: demo.M, AllowDemoTokens: true})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-done
	}()

	ctx := context.Background()
	querier := demo.Querier("auto")
	inSess := demo.M.NewSession(sieve.Metadata{Querier: querier, Purpose: "analytics"})
	wireSess, err := client.New("http://"+l.Addr().String(), "demo:"+querier+"|analytics").
		OpenSession(ctx, "")
	if err != nil {
		return err
	}
	fmt.Printf("sieve-server on %s, querier %s\n\n", l.Addr(), querier)
	fmt.Printf("%-22s %6s %10s %10s %10s %10s %7s\n",
		"query", "rows", "local p50", "local p95", "wire p50", "wire p95", "parity")

	const iters = 15
	var stats []serverBenchStat
	parityFailures := 0
	for _, q := range demo.Campus.CorpusQueries() {
		base, err := inSess.Execute(ctx, q.SQL)
		if err != nil {
			return fmt.Errorf("%s: in-process: %v", q.Name, err)
		}
		var want [][]any // nil when empty, like the wire side
		for _, r := range base.Rows {
			conv := make([]any, len(r))
			for j, v := range r {
				conv[j] = client.FromValue(v)
			}
			want = append(want, conv)
		}

		var local, wire []time.Duration
		parity := true
		for i := 0; i < iters; i++ {
			start := time.Now()
			if _, err := inSess.Execute(ctx, q.SQL); err != nil {
				return fmt.Errorf("%s: in-process: %v", q.Name, err)
			}
			local = append(local, time.Since(start))

			start = time.Now()
			rows, err := wireSess.Query(ctx, q.SQL)
			if err != nil {
				return fmt.Errorf("%s: wire: %v", q.Name, err)
			}
			var got [][]any
			for rows.Next() {
				r := rows.Row()
				cp := make([]any, len(r))
				copy(cp, r)
				got = append(got, cp)
			}
			if err := rows.Err(); err != nil {
				return fmt.Errorf("%s: wire: %v", q.Name, err)
			}
			rows.Close()
			wire = append(wire, time.Since(start))
			if i == 0 && !reflect.DeepEqual(got, want) {
				parity = false
				parityFailures++
			}
		}
		sort.Slice(local, func(i, j int) bool { return local[i] < local[j] })
		sort.Slice(wire, func(i, j int) bool { return wire[i] < wire[j] })
		st := serverBenchStat{
			Name: q.Name, Rows: len(base.Rows),
			LocalP50: percentileUS(local, 50), LocalP95: percentileUS(local, 95),
			WireP50: percentileUS(wire, 50), WireP95: percentileUS(wire, 95),
			Parity: parity,
		}
		stats = append(stats, st)
		mark := "ok"
		if !parity {
			mark = "DIFF"
		}
		fmt.Printf("%-22s %6d %9.0fµ %9.0fµ %9.0fµ %9.0fµ %7s\n",
			st.Name, st.Rows, st.LocalP50, st.LocalP95, st.WireP50, st.WireP95, mark)
	}

	out, err := json.MarshalIndent(map[string]any{
		"iters":   iters,
		"querier": querier,
		"queries": stats,
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_server.json", append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote BENCH_server.json (%d queries, %d iterations each)\n", len(stats), iters)
	if parityFailures > 0 {
		return fmt.Errorf("%d corpus queries diverged between wire and in-process", parityFailures)
	}
	return nil
}

// runBackendCorpus ships the examples corpus through an execution
// backend and verifies row parity against the embedded engine. The fake
// backends are seeded with the embedded baseline converted to driver
// values, so the run exercises the complete wire path — arg binding,
// placeholder order, row decoding — with no live server.
func runBackendCorpus(spec string) error {
	demo, err := workload.NewDemo(sieve.MySQL())
	if err != nil {
		return err
	}
	b, fake, err := backend.For(spec, demo.Campus.DB)
	if err != nil {
		return err
	}
	defer b.Close()
	ctx := context.Background()
	if err := b.Ping(ctx); err != nil {
		return fmt.Errorf("backend %s unreachable: %v", b.Name(), err)
	}
	qm := sieve.Metadata{Querier: demo.Querier("auto"), Purpose: "analytics"}
	sess := demo.M.NewSession(qm)
	fmt.Printf("backend %s (dialect %s), querier %s\n\n", b.Name(), b.Dialect(), qm.Querier)
	fmt.Printf("%-22s %8s %8s %6s %10s\n", "query", "rows", "base", "match", "time")

	mismatches := 0
	for _, q := range demo.Campus.CorpusQueries() {
		base, err := sess.Execute(ctx, q.SQL)
		if err != nil {
			return fmt.Errorf("%s: embedded baseline: %v", q.Name, err)
		}
		if fake != nil {
			fake.Push(backendtest.ResultFromRows(base.Columns, base.Rows))
		}
		em, err := sess.RewriteSQL(q.SQL, b.Dialect())
		if err != nil {
			return fmt.Errorf("%s: emit: %v", q.Name, err)
		}
		start := time.Now()
		n, err := b.Exec(ctx, em, nil)
		if err != nil {
			return fmt.Errorf("%s: %s: %v", q.Name, b.Name(), err)
		}
		match := "ok"
		if n != int64(len(base.Rows)) {
			match = "DIFF"
			mismatches++
		}
		fmt.Printf("%-22s %8d %8d %6s %10v\n",
			q.Name, n, len(base.Rows), match, time.Since(start).Round(time.Microsecond))
	}
	c := b.Counters()
	fmt.Printf("\nwire counters: %d execs, %d rows decoded, %d args bound, %d errors\n",
		c.Execs, c.RowsDecoded, c.ArgsBound, c.Errors)
	if fake != nil {
		calls := fake.Calls()
		fmt.Printf("fake driver recorded %d statements; last:\n", len(calls))
		if len(calls) > 0 {
			fmt.Printf("  %s\n", calls[len(calls)-1].SQL)
		}
	}
	if mismatches > 0 {
		return fmt.Errorf("%d corpus queries diverged from the embedded baseline", mismatches)
	}
	return nil
}
