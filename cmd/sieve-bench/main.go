// Command sieve-bench regenerates the paper's evaluation tables and
// figures (§7) on the embedded engine and prints them in the paper's
// layout. Use -list to see the experiment ids, -scale to pick corpus size.
//
//	sieve-bench -scale test -run all
//	sieve-bench -scale bench -run fig5,fig6
//	sieve-bench -micro
//
// -micro measures the execution-surface amortisations instead: prepared
// statements (parse + rewrite paid once) versus per-call Execute, and
// streaming LIMIT termination versus full materialisation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	sieve "github.com/sieve-db/sieve"
	"github.com/sieve-db/sieve/internal/experiment"
	"github.com/sieve-db/sieve/internal/workload"
)

type exp struct {
	id   string
	desc string
	run  func(experiment.Config) (*experiment.Table, error)
}

var experiments = []exp{
	{"fig2", "Figure 2: guard generation cost", experiment.GuardGenCost},
	{"table6", "Table 6: guard quality statistics", experiment.GuardQuality},
	{"table7", "Table 7: guard-count × cardinality quadrants", experiment.GuardQuadrants},
	{"fig3", "Figure 3: Inline vs Δ operator", experiment.InlineVsDelta},
	{"fig4", "Figure 4: IndexQuery vs IndexGuards", experiment.IndexChoice},
	{"table8", "Table 8: overall comparison (Q1–Q3)", experiment.OverallComparison},
	{"table9", "Table 9: Q1 by querier profile", func(c experiment.Config) (*experiment.Table, error) {
		return experiment.OverallByProfile(c, workload.Q1)
	}},
	{"table10", "Table 10: Q2 by querier profile", func(c experiment.Config) (*experiment.Table, error) {
		return experiment.OverallByProfile(c, workload.Q2)
	}},
	{"table11", "Table 11: Q3 by querier profile", func(c experiment.Config) (*experiment.Table, error) {
		return experiment.OverallByProfile(c, workload.Q3)
	}},
	{"fig5", "Figure 5: MySQL vs PostgreSQL dialects", experiment.PostgresComparison},
	{"fig6", "Figure 6: Mall scalability", experiment.MallScalability},
	{"ablation", "Ablations of SIEVE's design choices", experiment.Ablations},
	{"dynamic", "Section 6: eager vs deferred regeneration", func(c experiment.Config) (*experiment.Table, error) {
		return experiment.DynamicRegeneration(c, 10)
	}},
	{"workers", "Parallel guarded scan scaling (1..NumCPU workers)", experiment.WorkerScaling},
}

func main() {
	scale := flag.String("scale", "test", "corpus scale: test | medium | bench")
	run := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	micro := flag.Bool("micro", false, "measure the Session/Stmt/Rows execution surface and exit")
	workers := flag.Int("workers", 0, "parallel scan workers per engine (0 = NumCPU); adds a scaling dimension to every experiment")
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-10s %s\n", e.id, e.desc)
		}
		return
	}
	if *micro {
		if err := runMicro(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var cfg experiment.Config
	switch *scale {
	case "test":
		cfg = experiment.TestConfig()
	case "medium":
		cfg = experiment.MediumConfig()
	case "bench":
		cfg = experiment.BenchConfig()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg.Workers = *workers

	wanted := map[string]bool{}
	if *run != "all" {
		for _, id := range strings.Split(*run, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}

	fmt.Printf("sieve-bench scale=%s (devices=%d days=%d)\n\n", *scale, cfg.Campus.Devices, cfg.Campus.Days)
	failed := 0
	for _, e := range experiments {
		if len(wanted) > 0 && !wanted[e.id] {
			continue
		}
		start := time.Now()
		tab, err := e.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			failed++
			continue
		}
		fmt.Println(tab.String())
		fmt.Printf("(%s completed in %v)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// runMicro measures what the query execution surface amortises: the
// parse+rewrite per call that Stmt caches, and the scan work a streamed
// LIMIT avoids versus materialising the full result.
func runMicro() error {
	env, err := experiment.NewCampusEnv(experiment.TestConfig(), sieve.MySQL())
	if err != nil {
		return err
	}
	querier := workload.TopQueriers(env.Policies, 1, 1)[0]
	sess := env.M.NewSession(sieve.Metadata{Querier: querier, Purpose: "analytics"})
	q := "SELECT * FROM " + workload.TableWiFi
	ctx := context.Background()
	const iters = 200

	// Warm the guard cache so both paths measure rewrite+execute only.
	if _, err := sess.Execute(ctx, q); err != nil {
		return err
	}

	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := env.M.Execute(q, sess.Metadata()); err != nil {
			return err
		}
	}
	perExec := time.Since(start) / iters

	stmt, err := env.M.Prepare(q)
	if err != nil {
		return err
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := stmt.Execute(ctx, sess); err != nil {
			return err
		}
	}
	perPrepared := time.Since(start) / iters

	fmt.Printf("execute (parse+rewrite per call) : %v/op\n", perExec)
	fmt.Printf("prepared (rewrite cached, %d uses): %v/op (%.2fx)\n",
		stmt.Rewrites(), perPrepared, float64(perExec)/float64(perPrepared))

	env.Campus.DB.Counters.Reset()
	rows, err := sess.Query(ctx, q)
	if err != nil {
		return err
	}
	for i := 0; i < 10 && rows.Next(); i++ {
	}
	if err := rows.Err(); err != nil {
		return err
	}
	rows.Close()
	streamed := env.Campus.DB.Counters.TuplesRead

	env.Campus.DB.Counters.Reset()
	if _, err := sess.Execute(ctx, q); err != nil {
		return err
	}
	full := env.Campus.DB.Counters.TuplesRead
	fmt.Printf("streaming 10 rows reads %d tuples; materialising reads %d\n", streamed, full)
	return nil
}
