// Command sieve-server runs SIEVE as a stand-alone networked middleware:
// the demo campus and its policy corpus behind the versioned HTTP/JSON
// protocol of internal/server, queried with the top-level client package
// or plain curl.
//
//	sieve-server -demo-tokens &
//	curl -s http://127.0.0.1:8743/healthz
//	curl -s -H 'Authorization: Bearer demo:profile:staff|analytics' \
//	     -X POST http://127.0.0.1:8743/v1/sessions -d '{}'
//
// Production-shaped deployments list bearer tokens in a file (-tokens)
// and front a real DBMS through -backend driver://dsn; the demo-token
// scheme exists so the campus is explorable with zero setup. SIGTERM and
// SIGINT drain gracefully: /healthz flips to 503, new work is rejected,
// and in-flight streams get -drain-timeout to finish.
//
// With -data-dir the server is durable: every acknowledged mutation (row
// writes, policy grants and revocations, Protect calls) is write-ahead
// logged into the directory before it applies, snapshots bound replay,
// and the next start with the same -data-dir recovers exactly the
// acknowledged state — see docs/durability.md. A clean drain ends with a
// checkpoint so the following boot replays nothing.
package main

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	sieve "github.com/sieve-db/sieve"
	"github.com/sieve-db/sieve/internal/backend"
	"github.com/sieve-db/sieve/internal/cli"
	"github.com/sieve-db/sieve/internal/obs"
	"github.com/sieve-db/sieve/internal/server"
	"github.com/sieve-db/sieve/internal/wal"
	"github.com/sieve-db/sieve/internal/workload"
)

func main() {
	fs, opts := cli.ServerFlags()
	_ = fs.Parse(os.Args[1:])
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(opts *cli.ServerOpts) error {
	cfg := server.Config{
		AllowDemoTokens:      opts.DemoTokens,
		MaxSessionsPerTenant: opts.SessionLimit,
		MaxConcurrentQueries: opts.MaxQueries,
		RequestTimeout:       opts.RequestTimeout,
		SlowQuery:            opts.SlowQuery,
		Registry:             obs.NewRegistry(),
	}
	if opts.Tokens != "" {
		f, err := os.Open(opts.Tokens)
		if err != nil {
			return err
		}
		cfg.Tokens, err = server.ParseTokens(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	if opts.Verbose {
		cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	var (
		demo *workload.Demo
		mgr  *wal.Manager
	)
	if opts.DataDir != "" {
		syncPolicy, err := wal.ParseSyncPolicy(opts.WALSync)
		if err != nil {
			return err
		}
		dd, err := workload.NewDurableDemo(sieve.MySQL(), opts.DataDir, wal.Options{Sync: syncPolicy})
		if err != nil {
			return err
		}
		demo, mgr = &dd.Demo, dd.Manager
		cfg.ExtraVarz = mgr.Varz
		// The WAL's histograms land in the same registry the server
		// scrapes at /metrics, and traced queries learn the log's share
		// of their latency from the cumulative append/fsync clocks.
		mgr.SetRegistry(cfg.Registry)
		cfg.WALTimings = func() (int64, int64) { return mgr.AppendNanos(), mgr.FsyncNanos() }
		if rec := dd.Recovered; rec != nil {
			fmt.Printf("recovered %s: snapshot lsn %d + %d replayed records in %v (torn tail: %d bytes)\n",
				opts.DataDir, rec.SnapshotLSN, rec.Replayed, rec.Duration.Round(time.Millisecond), rec.TornBytes)
		}
	} else {
		d, err := workload.NewDemo(sieve.MySQL())
		if err != nil {
			return err
		}
		demo = d
	}
	cfg.Middleware = demo.M
	if opts.Backend != "" && opts.Backend != "embedded" {
		b, _, err := backend.For(opts.Backend, demo.Campus.DB)
		if err != nil {
			return err
		}
		defer b.Close()
		cfg.Backend = b
	}

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return err
	}
	fmt.Printf("sieve-server listening on http://%s (backend %s, %d policies, querier hint: %s)\n",
		l.Addr(), opts.Backend, len(demo.Policies), demo.Querier("auto"))

	// SIGTERM/SIGINT starts the drain; a second signal aborts it.
	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	select {
	case err := <-done:
		closeWAL(mgr)
		return err
	case <-sigCtx.Done():
		stop()
		fmt.Fprintf(os.Stderr, "draining (up to %v)...\n", opts.DrainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), opts.DrainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "drain deadline passed; connections closed: %v\n", err)
		}
		err := <-done
		closeWAL(mgr)
		return err
	}
}

// closeWAL ends a durable run cleanly: the final checkpoint means the
// next boot restores one snapshot and replays nothing.
func closeWAL(mgr *wal.Manager) {
	if mgr == nil {
		return
	}
	if err := mgr.Checkpoint(); err != nil {
		fmt.Fprintf(os.Stderr, "shutdown checkpoint failed (WAL still covers the state): %v\n", err)
	}
	if err := mgr.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "closing WAL: %v\n", err)
	}
}
