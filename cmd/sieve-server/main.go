// Command sieve-server runs SIEVE as a stand-alone networked middleware:
// the demo campus and its policy corpus behind the versioned HTTP/JSON
// protocol of internal/server, queried with the top-level client package
// or plain curl.
//
//	sieve-server -demo-tokens &
//	curl -s http://127.0.0.1:8743/healthz
//	curl -s -H 'Authorization: Bearer demo:profile:staff|analytics' \
//	     -X POST http://127.0.0.1:8743/v1/sessions -d '{}'
//
// Production-shaped deployments list bearer tokens in a file (-tokens)
// and front a real DBMS through -backend driver://dsn; the demo-token
// scheme exists so the campus is explorable with zero setup. SIGTERM and
// SIGINT drain gracefully: /healthz flips to 503, new work is rejected,
// and in-flight streams get -drain-timeout to finish.
package main

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"

	sieve "github.com/sieve-db/sieve"
	"github.com/sieve-db/sieve/internal/backend"
	"github.com/sieve-db/sieve/internal/cli"
	"github.com/sieve-db/sieve/internal/server"
	"github.com/sieve-db/sieve/internal/workload"
)

func main() {
	fs, opts := cli.ServerFlags()
	_ = fs.Parse(os.Args[1:])
	if err := run(opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(opts *cli.ServerOpts) error {
	cfg := server.Config{
		AllowDemoTokens:      opts.DemoTokens,
		MaxSessionsPerTenant: opts.SessionLimit,
		MaxConcurrentQueries: opts.MaxQueries,
		RequestTimeout:       opts.RequestTimeout,
	}
	if opts.Tokens != "" {
		f, err := os.Open(opts.Tokens)
		if err != nil {
			return err
		}
		cfg.Tokens, err = server.ParseTokens(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	if opts.Verbose {
		cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}

	demo, err := workload.NewDemo(sieve.MySQL())
	if err != nil {
		return err
	}
	cfg.Middleware = demo.M
	if opts.Backend != "" && opts.Backend != "embedded" {
		b, _, err := backend.For(opts.Backend, demo.Campus.DB)
		if err != nil {
			return err
		}
		defer b.Close()
		cfg.Backend = b
	}

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return err
	}
	fmt.Printf("sieve-server listening on http://%s (backend %s, %d policies, querier hint: %s)\n",
		l.Addr(), opts.Backend, len(demo.Policies), demo.Querier("auto"))

	// SIGTERM/SIGINT starts the drain; a second signal aborts it.
	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	select {
	case err := <-done:
		return err
	case <-sigCtx.Done():
		stop()
		fmt.Fprintf(os.Stderr, "draining (up to %v)...\n", opts.DrainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), opts.DrainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "drain deadline passed; connections closed: %v\n", err)
		}
		return <-done
	}
}
