// Command sieve-gen generates the evaluation corpora and prints their
// statistics — the §7.1 numbers (population by profile, events, policies
// per owner and per querier) for the chosen scale.
//
//	sieve-gen -dataset campus -scale bench
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	sieve "github.com/sieve-db/sieve"
	"github.com/sieve-db/sieve/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "campus", "dataset: campus | mall | scale")
	scale := flag.String("scale", "test", "scale: test | bench")
	queriers := flag.Int("queriers", 10000, "scale dataset: querier population size")
	groups := flag.Int("groups", 100, "scale dataset: access groups (ceiling on policy profiles)")
	policies := flag.Int("policies", 100000, "scale dataset: policy corpus size")
	zipf := flag.Float64("zipf", 1.2, "scale dataset: group-popularity skew (> 1)")
	flag.Parse()

	switch *dataset {
	case "campus":
		campusStats(*scale)
	case "mall":
		mallStats(*scale)
	case "scale":
		scaleStats(*queriers, *groups, *policies, *zipf)
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
}

// scaleStats prints the million-policy-regime corpus shape: how many
// distinct policy profiles the querier population collapses into, and
// how skewed the group membership is.
func scaleStats(queriers, groups, policies int, zipf float64) {
	cfg := workload.DefaultScaleConfig()
	cfg.Queriers = queriers
	cfg.Groups = groups
	cfg.Policies = policies
	cfg.ZipfS = zipf
	corpus := workload.BuildScaleCorpus(cfg)
	fmt.Printf("Million-policy-regime corpus (seed %d)\n", cfg.Seed)
	fmt.Printf("  queriers: %d   groups: %d   policies: %d   zipf s: %.2f\n",
		queriers, groups, policies, zipf)
	fmt.Printf("  distinct policy profiles: %d (%.1f queriers per profile)\n",
		corpus.Profiles, float64(queriers)/float64(maxInt(corpus.Profiles, 1)))
	counts := corpus.GroupCounts()
	top := counts
	if len(top) > 5 {
		top = top[:5]
	}
	fmt.Printf("  largest groups by membership: %v\n", top)
	perGroup := workload.QuerierCounts(corpus.Policies)
	fmt.Printf("  groups holding policies: %d (avg %.1f policies/group)\n",
		len(perGroup), avgStr(perGroup))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func campusStats(scale string) {
	cfg := workload.TestCampusConfig()
	pcfg := workload.TestPolicyConfig()
	if scale == "bench" {
		cfg = workload.BenchCampusConfig()
		pcfg = workload.BenchPolicyConfig()
	}
	campus, err := workload.BuildCampus(cfg, sieve.MySQL())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TIPPERS-like campus (seed %d)\n", cfg.Seed)
	fmt.Printf("  devices: %d   APs: %d   days: %d   events: %d\n",
		cfg.Devices, cfg.APs, cfg.Days, campus.NumEvents)
	byProfile := map[workload.Profile]int{}
	for _, u := range campus.Users {
		byProfile[u.Profile]++
	}
	fmt.Printf("  profiles: visitor=%d staff=%d faculty=%d undergrad=%d grad=%d\n",
		byProfile[workload.Visitor], byProfile[workload.Staff], byProfile[workload.Faculty],
		byProfile[workload.Undergrad], byProfile[workload.Grad])

	ps := campus.GeneratePolicies(pcfg)
	fmt.Printf("  policies: %d\n", len(ps))
	perOwner := map[int64]int{}
	for _, p := range ps {
		perOwner[p.Owner]++
	}
	fmt.Printf("  owners with policies: %d (avg %.1f policies/owner)\n",
		len(perOwner), avgInt(perOwner))
	counts := workload.QuerierCounts(ps)
	fmt.Printf("  distinct queriers: %d (avg %.1f policies/querier)\n",
		len(counts), avgStr(counts))
	top := workload.TopQueriers(ps, 10, 1)
	fmt.Println("  busiest queriers:")
	for _, q := range top {
		fmt.Printf("    %-16s %d policies\n", q, counts[q])
	}
}

func mallStats(scale string) {
	cfg := workload.TestMallConfig()
	per := 6
	if scale == "bench" {
		cfg = workload.BenchMallConfig()
		per = 8
	}
	mall, err := workload.BuildMall(cfg, sieve.Postgres())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mall dataset (seed %d)\n", cfg.Seed)
	fmt.Printf("  customers: %d   shops: %d   days: %d   events: %d\n",
		cfg.Customers, cfg.Shops, cfg.Days, mall.NumEvents)
	ps := mall.GeneratePolicies(cfg.Seed+1, per)
	counts := workload.QuerierCounts(ps)
	fmt.Printf("  policies: %d across %d shop queriers (avg %.1f/shop)\n",
		len(ps), len(counts), avgStr(counts))
	var shops []string
	for q := range counts {
		shops = append(shops, q)
	}
	sort.Slice(shops, func(i, j int) bool { return counts[shops[i]] > counts[shops[j]] })
	for i, s := range shops {
		if i == 5 {
			break
		}
		fmt.Printf("    %-12s %d policies\n", s, counts[s])
	}
}

func avgInt(m map[int64]int) float64 {
	if len(m) == 0 {
		return 0
	}
	t := 0
	for _, v := range m {
		t += v
	}
	return float64(t) / float64(len(m))
}

func avgStr(m map[string]int) float64 {
	if len(m) == 0 {
		return 0
	}
	t := 0
	for _, v := range m {
		t += v
	}
	return float64(t) / float64(len(m))
}
