// Command sieve-explain shows what SIEVE does to a query: the guarded
// expression generated for the querier, the strategy decision with its
// modelled costs, the rewritten SQL, and the engine's plan — over a
// generated demo campus.
//
//	sieve-explain -dialect mysql -query "SELECT * FROM WiFi_Dataset" -querier auto
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	sieve "github.com/sieve-db/sieve"
	"github.com/sieve-db/sieve/internal/sqlparser"
	"github.com/sieve-db/sieve/internal/workload"
)

func main() {
	dialect := flag.String("dialect", "mysql", "engine dialect: mysql | postgres")
	query := flag.String("query", "SELECT * FROM "+workload.TableWiFi, "query to explain")
	querier := flag.String("querier", "auto", "querier identity ('auto' picks the busiest)")
	purpose := flag.String("purpose", "analytics", "query purpose")
	workers := flag.Int("workers", 0, "parallel scan workers (0 = engine default, NumCPU)")
	flag.Parse()

	var d sieve.Dialect
	switch *dialect {
	case "mysql":
		d = sieve.MySQL()
	case "postgres":
		d = sieve.Postgres()
	default:
		fmt.Fprintf(os.Stderr, "unknown dialect %q\n", *dialect)
		os.Exit(2)
	}

	campus, err := workload.BuildCampus(workload.TestCampusConfig(), d)
	if err != nil {
		log.Fatal(err)
	}
	if *workers > 0 {
		campus.DB.ScanWorkers = *workers
	}
	policies := campus.GeneratePolicies(workload.TestPolicyConfig())
	store, err := sieve.NewStore(campus.DB)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.BulkLoad(policies); err != nil {
		log.Fatal(err)
	}
	m, err := sieve.New(store, sieve.WithGroups(campus.Groups()))
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Protect(workload.TableWiFi); err != nil {
		log.Fatal(err)
	}

	q := *querier
	if q == "auto" {
		q = workload.TopQueriers(policies, 1, 1)[0]
	}
	qm := sieve.Metadata{Querier: q, Purpose: *purpose}
	sess := m.NewSession(qm)
	fmt.Printf("dialect : %s\nquerier : %s (purpose %s)\nquery   : %s\n\n", d.Name(), q, *purpose, *query)

	rewritten, report, err := sess.Rewrite(*query)
	if err != nil {
		log.Fatal(err)
	}
	for _, dec := range report.Decisions {
		fmt.Printf("table %s:\n", dec.Relation)
		fmt.Printf("  strategy        : %s\n", dec.Strategy)
		fmt.Printf("  guards          : %d (%d via Δ)\n", dec.Guards, dec.DeltaGuards)
		fmt.Printf("  policies        : %d (+%d pending)\n", dec.Policies, dec.PendingPolicies)
		fmt.Printf("  segments        : %d/%d prunable by guard zone maps\n", dec.SegmentsPrunable, dec.SegmentsTotal)
		fmt.Printf("  cost LinearScan : %s\n", cost(dec.CostLinearScan))
		fmt.Printf("  cost IndexQuery : %s (index %s)\n", cost(dec.CostIndexQuery), orDash(dec.QueryIndex))
		fmt.Printf("  cost IndexGuards: %s\n", cost(dec.CostIndexGuards))
	}
	if ge, ok := m.GuardedExpression(qm, workload.TableWiFi); ok {
		fmt.Printf("\n%s\n", ge.String())
	}

	fmt.Println("rewritten SQL:")
	fmt.Println(" ", rewritten)

	stmt, err := sqlparser.Parse(rewritten)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := campus.DB.Explain(stmt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nengine plan:\n%s", plan.String())

	// Execute materialising (the exhaustive path), so the parallel
	// guarded-scan operator engages when the table is large enough, and
	// report the executor's actual segment accounting.
	campus.DB.ResetCounters()
	res, err := sess.Execute(context.Background(), *query)
	if err != nil {
		log.Fatal(err)
	}
	c := campus.DB.CountersSnapshot()
	fmt.Printf("\nresult: %d rows\n", len(res.Rows))
	fmt.Printf("executor: %d tuples read, %d segments scanned, %d pruned (zero tuple reads), %d parallel scans (workers=%d)\n",
		c.TuplesRead, c.SegmentsScanned, c.SegmentsPruned, c.ParallelScans, campus.DB.EffectiveScanWorkers())
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func cost(c float64) string {
	if c >= 1e300 {
		return "∞ (no usable query index)"
	}
	return fmt.Sprintf("%.0f", c)
}
