// Command sieve-explain shows what SIEVE does to a query: the guarded
// expression generated for the querier, the strategy decision with its
// modelled costs, the rewritten SQL, the per-dialect emitted SQL, and the
// engine's plan — over a generated demo campus.
//
//	sieve-explain -dialect mysql -query "SELECT * FROM WiFi_Dataset" -querier auto
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	sieve "github.com/sieve-db/sieve"
	"github.com/sieve-db/sieve/internal/cli"
	"github.com/sieve-db/sieve/internal/obs"
	"github.com/sieve-db/sieve/internal/sqlparser"
	"github.com/sieve-db/sieve/internal/workload"
)

func main() {
	fs, opts := cli.ExplainFlags("SELECT * FROM " + workload.TableWiFi)
	_ = fs.Parse(os.Args[1:])

	var d sieve.Dialect
	switch opts.Dialect {
	case "mysql":
		d = sieve.MySQL()
	case "postgres":
		d = sieve.Postgres()
	default:
		fmt.Fprintf(os.Stderr, "unknown dialect %q\n", opts.Dialect)
		os.Exit(2)
	}

	demo, err := workload.NewDemo(d)
	if err != nil {
		log.Fatal(err)
	}
	campus := demo.Campus
	if opts.Workers > 0 {
		campus.DB.ScanWorkers = opts.Workers
	}

	qm := sieve.Metadata{Querier: demo.Querier(opts.Querier), Purpose: opts.Purpose}
	sess := demo.M.NewSession(qm)
	fmt.Printf("dialect : %s\nquerier : %s (purpose %s)\nquery   : %s\n\n", d.Name(), qm.Querier, opts.Purpose, opts.Query)

	// One policy rewrite serves the rewritten text, both emissions, and
	// the engine plan below.
	stmt, report, err := demo.M.RewriteQuery(opts.Query, qm)
	if err != nil {
		log.Fatal(err)
	}
	rewritten := sqlparser.Print(stmt)
	for _, dec := range report.Decisions {
		fmt.Printf("table %s:\n", dec.Relation)
		fmt.Printf("  strategy        : %s\n", dec.Strategy)
		fmt.Printf("  guards          : %d (%d via Δ)\n", dec.Guards, dec.DeltaGuards)
		fmt.Printf("  policies        : %d (+%d pending)\n", dec.Policies, dec.PendingPolicies)
		fmt.Printf("  segments        : %d/%d prunable by guard zone maps\n", dec.SegmentsPrunable, dec.SegmentsTotal)
		fmt.Printf("  cost LinearScan : %s\n", cost(dec.CostLinearScan))
		fmt.Printf("  cost IndexQuery : %s (index %s)\n", cost(dec.CostIndexQuery), orDash(dec.QueryIndex))
		fmt.Printf("  cost IndexGuards: %s\n", cost(dec.CostIndexGuards))
		shared := "generated for this querier"
		if dec.SharedState {
			shared = "shared from another querier's generation"
		}
		fmt.Printf("  signature       : %s (%s)\n", dec.Signature, shared)
	}
	if ge, ok := demo.M.GuardedExpression(qm, workload.TableWiFi); ok {
		fmt.Printf("\n%s\n", ge.String())
	}

	fmt.Println("rewritten SQL:")
	fmt.Println(" ", rewritten)

	fmt.Println("\nemitted SQL:")
	for _, dialect := range []string{"mysql", "postgres"} {
		e, err := sieve.EmitterFor(dialect)
		if err != nil {
			log.Fatal(err)
		}
		em, err := e.Emit(stmt, report.GuardedCTEs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  [%s] %s\n", em.Dialect, em.SQL)
		for i, a := range em.Args {
			fmt.Printf("    arg %d: %s\n", i+1, a.String())
		}
	}

	plan, err := campus.DB.Explain(stmt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nengine plan:\n%s", plan.String())

	// Execute materialising (the exhaustive path), so the parallel
	// guarded-scan operator engages when the table is large enough, and
	// report the executor's actual segment accounting.
	campus.DB.ResetCounters()
	ctx := context.Background()
	var tr *obs.Span
	if opts.Trace {
		tr = obs.NewTrace("query")
		ctx = obs.WithSpan(ctx, tr)
	}
	res, err := sess.Execute(ctx, opts.Query)
	if err != nil {
		log.Fatal(err)
	}
	if tr != nil {
		tr.Finish()
		fmt.Println("\ntrace:")
		tr.Node().Format(os.Stdout)
	}
	c := campus.DB.CountersSnapshot()
	fmt.Printf("\nresult: %d rows\n", len(res.Rows))
	fmt.Printf("executor: %d tuples read, %d segments scanned, %d pruned (zero tuple reads), %d parallel scans (workers=%d)\n",
		c.TuplesRead, c.SegmentsScanned, c.SegmentsPruned, c.ParallelScans, campus.DB.EffectiveScanWorkers())
	fmt.Printf("vectorised: %d batches / %d rows batch-evaluated, %d segments pruned by owner dictionaries\n",
		c.BatchesVectorised, c.RowsVectorised, c.OwnerDictPruned)

	cs := demo.M.CacheStats()
	fmt.Printf("guard cache: %d hits / %d misses, %d generations, %d shared bindings, %d live states for %d claims\n",
		cs.GuardCacheHits, cs.GuardCacheMisses, cs.GuardRegens, cs.GuardShares, cs.GuardStates, cs.Claims)
	fmt.Printf("invalidation: %d churn events touched %d claims; plan cache %d hits / %d misses\n",
		cs.ScopedInvalidations, cs.ClaimsInvalidated, cs.PlanCacheHits, cs.PlanCacheMisses)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func cost(c float64) string {
	if c >= 1e300 {
		return "∞ (no usable query index)"
	}
	return fmt.Sprintf("%.0f", c)
}
