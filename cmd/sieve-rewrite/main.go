// Command sieve-rewrite is the middleware's emission front door: it rewrites
// queries under the demo campus's policies and prints executable SQL for an
// external backend — the paper's deployment mode, where SIEVE fronts an
// unmodified MySQL or PostgreSQL (§5.3, §5.5).
//
//	echo "SELECT * FROM WiFi_Dataset" | sieve-rewrite -dialect postgres
//	sieve-rewrite -corpus -dialect all
//	sieve-rewrite -query "SELECT * FROM WiFi_Dataset LIMIT 5" -comments -args
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	sieve "github.com/sieve-db/sieve"
	"github.com/sieve-db/sieve/internal/cli"
	"github.com/sieve-db/sieve/internal/workload"
)

func main() {
	fs, opts := cli.RewriteFlags()
	_ = fs.Parse(os.Args[1:])

	var dialects []string
	switch opts.Dialect {
	case "all":
		dialects = []string{"sieve", "mysql", "postgres"}
	case "mysql", "postgres", "postgresql", "sieve":
		dialects = []string{opts.Dialect}
	default:
		fmt.Fprintf(os.Stderr, "unknown dialect %q (want mysql, postgres, sieve or all)\n", opts.Dialect)
		os.Exit(2)
	}

	// The demo middleware runs its embedded engine as MySQL; emission is
	// engine-dialect-independent, so every output dialect comes from the
	// same rewrite.
	demo, err := workload.NewDemo(sieve.MySQL())
	if err != nil {
		log.Fatal(err)
	}
	queries, err := gatherQueries(opts, demo.Campus)
	if err != nil {
		log.Fatal(err)
	}
	if len(queries) == 0 {
		fmt.Fprintln(os.Stderr, "no queries: pass -query, -corpus, or pipe SQL on stdin")
		fs.Usage()
		os.Exit(2)
	}
	qm := sieve.Metadata{Querier: demo.Querier(opts.Querier), Purpose: opts.Purpose}
	fmt.Printf("-- querier: %s (purpose %s)\n", qm.Querier, qm.Purpose)

	var emitOpts []sieve.EmitOption
	if opts.Comments {
		emitOpts = append(emitOpts, sieve.WithProvenanceComments())
		if opts.Dialect == "sieve" {
			fmt.Fprintln(os.Stderr, "note: -comments does not apply to the sieve dialect (its round-trip form has no comments)")
		}
	}

	for _, q := range queries {
		fmt.Printf("\n-- query%s: %s\n", label(q.Name), q.SQL)
		// One policy rewrite serves every dialect: emission works off the
		// rewritten AST plus its guard provenance.
		stmt, rep, err := demo.M.RewriteQuery(q.SQL, qm)
		if err != nil {
			log.Fatalf("rewrite: %v", err)
		}
		for _, d := range dialects {
			eOpts := emitOpts
			if d == "sieve" {
				eOpts = nil // the round-trip dialect takes no options
			}
			e, err := sieve.EmitterFor(d, eOpts...)
			if err != nil {
				log.Fatal(err)
			}
			em, err := e.Emit(stmt, rep.GuardedCTEs)
			if err != nil {
				log.Fatalf("emit for %s: %v", d, err)
			}
			fmt.Printf("-- dialect: %s\n%s\n", em.Dialect, em.SQL)
			if opts.Args {
				// Each arg prints as its SQL literal plus the native Go type
				// a database/sql driver would bind (storage.Value.Native).
				for i, a := range em.Args {
					fmt.Printf("-- arg %d: %s (%T)\n", i+1, a.String(), a.Native())
				}
				if len(em.Args) == 0 && em.Dialect != "sieve" {
					fmt.Println("-- no bound args")
				}
			}
		}
	}
}

func label(name string) string {
	if name == "" {
		return ""
	}
	return " " + name
}

// gatherQueries resolves the query source: -query beats -corpus beats
// stdin, where statements are ";"-separated.
func gatherQueries(opts *cli.RewriteOpts, campus *workload.Campus) ([]workload.NamedQuery, error) {
	if opts.Query != "" {
		return []workload.NamedQuery{{SQL: opts.Query}}, nil
	}
	if opts.Corpus {
		return campus.CorpusQueries(), nil
	}
	raw, err := io.ReadAll(os.Stdin)
	if err != nil {
		return nil, err
	}
	var out []workload.NamedQuery
	for _, part := range splitStatements(string(raw)) {
		if q := strings.TrimSpace(part); q != "" {
			out = append(out, workload.NamedQuery{SQL: q})
		}
	}
	return out, nil
}

// splitStatements splits on ";" outside single-quoted string literals
// (with SQL's ” escape handled by the quote state flipping twice).
func splitStatements(s string) []string {
	var out []string
	start := 0
	inString := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '\'':
			inString = !inString
		case s[i] == ';' && !inString:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}
