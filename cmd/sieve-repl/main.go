// Command sieve-repl is an interactive shell over a generated demo campus:
// type SQL, see policy-compliant results as a chosen querier. Each
// identity switch opens a fresh sieve.Session; results stream through
// sieve.Rows, so only the rows actually printed are produced, and Ctrl-C
// cancels a long-running query through its context. Middleware
// meta-commands start with a backslash.
//
//	\querier u:42        switch querier identity (opens a new session)
//	\purpose analytics   switch query purpose (opens a new session)
//	\rewrite             toggle printing the rewritten SQL
//	\prepare <sql>       prepare a statement; run it with \exec
//	\exec                execute the prepared statement for this session
//	\policies            count policies for the current metadata
//	\guards              show the cached guarded expression
//	\quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	sieve "github.com/sieve-db/sieve"
	"github.com/sieve-db/sieve/internal/workload"
)

// repl holds the shell's state: one middleware, one current session, and
// at most one prepared statement.
type repl struct {
	m           *sieve.Middleware
	sess        *sieve.Session
	prepared    *sieve.Stmt
	showRewrite bool
}

func main() {
	dialect := flag.String("dialect", "mysql", "engine dialect: mysql | postgres")
	flag.Parse()

	var d sieve.Dialect
	switch *dialect {
	case "mysql":
		d = sieve.MySQL()
	case "postgres":
		d = sieve.Postgres()
	default:
		fmt.Fprintf(os.Stderr, "unknown dialect %q\n", *dialect)
		os.Exit(2)
	}

	campus, err := workload.BuildCampus(workload.TestCampusConfig(), d)
	if err != nil {
		log.Fatal(err)
	}
	policies := campus.GeneratePolicies(workload.TestPolicyConfig())
	store, err := sieve.NewStore(campus.DB)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.BulkLoad(policies); err != nil {
		log.Fatal(err)
	}
	m, err := sieve.New(store, sieve.WithGroups(campus.Groups()))
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Protect(workload.TableWiFi); err != nil {
		log.Fatal(err)
	}

	r := &repl{m: m}
	r.sess = m.NewSession(sieve.Metadata{
		Querier: workload.TopQueriers(policies, 1, 1)[0],
		Purpose: "analytics",
	})

	fmt.Printf("sieve-repl on %s dialect — %d events, %d policies\n",
		d.Name(), campus.NumEvents, len(policies))
	qm := r.sess.Metadata()
	fmt.Printf("querier=%s purpose=%s; \\quit to exit, \\help for commands\n", qm.Querier, qm.Purpose)

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("sieve> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if r.handleMeta(line) {
				return
			}
			continue
		}
		if r.showRewrite {
			text, rep, err := r.sess.Rewrite(line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println("--", text)
			for _, dec := range rep.Decisions {
				fmt.Printf("-- %s: %s, %d guards, %d policies\n",
					dec.Relation, dec.Strategy, dec.Guards, dec.Policies)
			}
		}
		r.run(func(ctx context.Context) (*sieve.Rows, error) {
			return r.sess.Query(ctx, line)
		})
	}
}

// run executes one query under an interrupt-cancellable context and
// streams its rows to the terminal, closing early past maxRows.
func (r *repl) run(open func(ctx context.Context) (*sieve.Rows, error)) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rows, err := open(ctx)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer rows.Close()
	printRows(rows)
}

func (r *repl) handleMeta(line string) (quit bool) {
	fields := strings.Fields(line)
	qm := r.sess.Metadata()
	switch fields[0] {
	case "\\quit", "\\q":
		return true
	case "\\help":
		fmt.Println("\\querier <id> | \\purpose <p> | \\rewrite | \\prepare <sql> | \\exec | \\policies | \\guards | \\quit")
	case "\\querier":
		if len(fields) > 1 {
			qm.Querier = fields[1]
			r.sess = r.m.NewSession(qm)
		}
		fmt.Println("querier =", qm.Querier)
	case "\\purpose":
		if len(fields) > 1 {
			qm.Purpose = fields[1]
			r.sess = r.m.NewSession(qm)
		}
		fmt.Println("purpose =", qm.Purpose)
	case "\\rewrite":
		r.showRewrite = !r.showRewrite
		fmt.Println("show rewrite =", r.showRewrite)
	case "\\prepare":
		sql := strings.TrimSpace(strings.TrimPrefix(line, "\\prepare"))
		if sql == "" {
			fmt.Println("usage: \\prepare <sql>")
			break
		}
		stmt, err := r.m.Prepare(sql)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		r.prepared = stmt
		fmt.Println("prepared:", sql)
	case "\\exec":
		if r.prepared == nil {
			fmt.Println("nothing prepared; \\prepare <sql> first")
			break
		}
		r.run(func(ctx context.Context) (*sieve.Rows, error) {
			return r.prepared.Query(ctx, r.sess)
		})
		fmt.Printf("(%d rewrites amortised over executions)\n", r.prepared.Rewrites())
	case "\\policies":
		ps := r.m.Store().PoliciesFor(qm, workload.TableWiFi, r.m.Groups())
		fmt.Printf("%d policies apply to %s/%s on %s\n", len(ps), qm.Querier, qm.Purpose, workload.TableWiFi)
	case "\\guards":
		if ge, ok := r.m.GuardedExpression(qm, workload.TableWiFi); ok {
			fmt.Print(ge.String())
		} else {
			fmt.Println("no cached guarded expression (run a query first)")
		}
	default:
		fmt.Println("unknown command; \\help for help")
	}
	return false
}

// printRows streams a result to the terminal. Past maxRows the Rows is
// closed, which terminates the underlying scan — the remaining row count
// is intentionally not known.
func printRows(rows *sieve.Rows) {
	const maxRows = 20
	fmt.Println(strings.Join(rows.Columns(), " | "))
	n := 0
	for rows.Next() {
		if n == maxRows {
			rows.Close()
			fmt.Println("... (output truncated; scan stopped)")
			break
		}
		r := rows.Row()
		cells := make([]string, len(r))
		for j, v := range r {
			cells[j] = v.String()
		}
		fmt.Println(strings.Join(cells, " | "))
		n++
	}
	if err := rows.Err(); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("(%d rows shown)\n", n)
}
