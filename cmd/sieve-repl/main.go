// Command sieve-repl is an interactive shell over a generated demo campus:
// type SQL, see policy-compliant results as a chosen querier. Middleware
// meta-commands start with a backslash.
//
//	\querier u:42        switch querier identity
//	\purpose analytics   switch query purpose
//	\rewrite             toggle printing the rewritten SQL
//	\policies            count policies for the current metadata
//	\guards              show the cached guarded expression
//	\quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	sieve "github.com/sieve-db/sieve"
	"github.com/sieve-db/sieve/internal/workload"
)

func main() {
	dialect := flag.String("dialect", "mysql", "engine dialect: mysql | postgres")
	flag.Parse()

	var d sieve.Dialect
	switch *dialect {
	case "mysql":
		d = sieve.MySQL()
	case "postgres":
		d = sieve.Postgres()
	default:
		fmt.Fprintf(os.Stderr, "unknown dialect %q\n", *dialect)
		os.Exit(2)
	}

	campus, err := workload.BuildCampus(workload.TestCampusConfig(), d)
	if err != nil {
		log.Fatal(err)
	}
	policies := campus.GeneratePolicies(workload.TestPolicyConfig())
	store, err := sieve.NewStore(campus.DB)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.BulkLoad(policies); err != nil {
		log.Fatal(err)
	}
	m, err := sieve.New(store, sieve.WithGroups(campus.Groups()))
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Protect(workload.TableWiFi); err != nil {
		log.Fatal(err)
	}

	qm := sieve.Metadata{
		Querier: workload.TopQueriers(policies, 1, 1)[0],
		Purpose: "analytics",
	}
	showRewrite := false

	fmt.Printf("sieve-repl on %s dialect — %d events, %d policies\n",
		d.Name(), campus.NumEvents, len(policies))
	fmt.Printf("querier=%s purpose=%s; \\quit to exit, \\help for commands\n", qm.Querier, qm.Purpose)

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("sieve> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if handleMeta(line, m, &qm, &showRewrite) {
				return
			}
			continue
		}
		if showRewrite {
			text, rep, err := m.Rewrite(line, qm)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println("--", text)
			for _, dec := range rep.Decisions {
				fmt.Printf("-- %s: %s, %d guards, %d policies\n",
					dec.Relation, dec.Strategy, dec.Guards, dec.Policies)
			}
		}
		res, err := m.Execute(line, qm)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		printResult(res)
	}
}

func handleMeta(line string, m *sieve.Middleware, qm *sieve.Metadata, showRewrite *bool) (quit bool) {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\quit", "\\q":
		return true
	case "\\help":
		fmt.Println("\\querier <id> | \\purpose <p> | \\rewrite | \\policies | \\guards | \\quit")
	case "\\querier":
		if len(fields) > 1 {
			qm.Querier = fields[1]
		}
		fmt.Println("querier =", qm.Querier)
	case "\\purpose":
		if len(fields) > 1 {
			qm.Purpose = fields[1]
		}
		fmt.Println("purpose =", qm.Purpose)
	case "\\rewrite":
		*showRewrite = !*showRewrite
		fmt.Println("show rewrite =", *showRewrite)
	case "\\policies":
		ps := m.Store().PoliciesFor(*qm, workload.TableWiFi, m.Groups())
		fmt.Printf("%d policies apply to %s/%s on %s\n", len(ps), qm.Querier, qm.Purpose, workload.TableWiFi)
	case "\\guards":
		if ge, ok := m.GuardedExpression(*qm, workload.TableWiFi); ok {
			fmt.Print(ge.String())
		} else {
			fmt.Println("no cached guarded expression (run a query first)")
		}
	default:
		fmt.Println("unknown command; \\help for help")
	}
	return false
}

func printResult(res *sieve.Result) {
	const maxRows = 20
	fmt.Println(strings.Join(res.Columns, " | "))
	for i, r := range res.Rows {
		if i == maxRows {
			fmt.Printf("... (%d more rows)\n", len(res.Rows)-maxRows)
			break
		}
		cells := make([]string, len(r))
		for j, v := range r {
			cells[j] = v.String()
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}
