// Command sieve-repl is an interactive shell over a generated demo campus:
// type SQL, see policy-compliant results as a chosen querier. Each
// identity switch opens a fresh sieve.Session; results stream through
// sieve.Rows, so only the rows actually printed are produced, and Ctrl-C
// cancels a long-running query through its context. Middleware
// meta-commands start with a backslash.
//
//	\querier u:42        switch querier identity (opens a new session)
//	\purpose analytics   switch query purpose (opens a new session)
//	\rewrite             toggle printing the rewritten SQL
//	\trace               toggle printing each query's per-phase span tree
//	\prepare <sql>       prepare a statement; run it with \exec
//	\exec                execute the prepared statement for this session
//	\backend <spec>      route queries through an execution backend:
//	                     embedded | fake-mysql | fake-postgres |
//	                     driver://dsn | off. The fakes are seeded with the
//	                     embedded engine's rows, so results round-trip the
//	                     full emit -> ship -> decode wire path.
//	\policies            count policies for the current metadata
//	\guards              show the cached guarded expression
//	\quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"

	sieve "github.com/sieve-db/sieve"
	"github.com/sieve-db/sieve/internal/backend"
	"github.com/sieve-db/sieve/internal/backend/backendtest"
	"github.com/sieve-db/sieve/internal/obs"
	"github.com/sieve-db/sieve/internal/workload"
)

// repl holds the shell's state: one middleware, one current session, at
// most one prepared statement, and an optional execution backend queries
// are routed through.
type repl struct {
	m           *sieve.Middleware
	db          *sieve.DB
	sess        *sieve.Session
	prepared    *sieve.Stmt
	showRewrite bool
	showTrace   bool

	backend     sieve.Backend
	backendFake *backendtest.Fake
}

func main() {
	dialect := flag.String("dialect", "mysql", "engine dialect: mysql | postgres")
	flag.Parse()

	var d sieve.Dialect
	switch *dialect {
	case "mysql":
		d = sieve.MySQL()
	case "postgres":
		d = sieve.Postgres()
	default:
		fmt.Fprintf(os.Stderr, "unknown dialect %q\n", *dialect)
		os.Exit(2)
	}

	campus, err := workload.BuildCampus(workload.TestCampusConfig(), d)
	if err != nil {
		log.Fatal(err)
	}
	policies := campus.GeneratePolicies(workload.TestPolicyConfig())
	store, err := sieve.NewStore(campus.DB)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.BulkLoad(policies); err != nil {
		log.Fatal(err)
	}
	m, err := sieve.New(store, sieve.WithGroups(campus.Groups()))
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Protect(workload.TableWiFi); err != nil {
		log.Fatal(err)
	}

	r := &repl{m: m, db: campus.DB}
	r.sess = m.NewSession(sieve.Metadata{
		Querier: workload.TopQueriers(policies, 1, 1)[0],
		Purpose: "analytics",
	})

	fmt.Printf("sieve-repl on %s dialect — %d events, %d policies\n",
		d.Name(), campus.NumEvents, len(policies))
	qm := r.sess.Metadata()
	fmt.Printf("querier=%s purpose=%s; \\quit to exit, \\help for commands\n", qm.Querier, qm.Purpose)

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("sieve> ")
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if r.handleMeta(line) {
				return
			}
			continue
		}
		if r.showRewrite {
			text, rep, err := r.sess.Rewrite(line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println("--", text)
			for _, dec := range rep.Decisions {
				fmt.Printf("-- %s: %s, %d guards, %d policies\n",
					dec.Relation, dec.Strategy, dec.Guards, dec.Policies)
			}
		}
		if r.backend != nil {
			r.runOnBackend(line)
			continue
		}
		r.run(func(ctx context.Context) (*sieve.Rows, error) {
			return r.sess.Query(ctx, line)
		})
	}
}

// run executes one query under an interrupt-cancellable context and
// streams its rows to the terminal, closing early past maxRows. With
// \trace on, the query runs under a span tree printed after its rows.
func (r *repl) run(open func(ctx context.Context) (*sieve.Rows, error)) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var tr *obs.Span
	if r.showTrace {
		tr = obs.NewTrace("query")
		ctx = obs.WithSpan(ctx, tr)
	}
	rows, err := open(ctx)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer rows.Close()
	printRows(rows)
	if tr != nil {
		tr.Finish()
		tr.Node().Format(os.Stdout)
	}
}

// runOnBackend ships one query through the active backend: rewrite, emit
// for the backend's dialect, execute there, decode and print. Fake
// backends are seeded with the embedded engine's result first, so the
// printed rows really travelled the encode -> SQL -> decode wire path.
func (r *repl) runOnBackend(line string) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if r.backendFake != nil {
		res, err := r.sess.Execute(ctx, line)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		r.backendFake.Push(backendtest.ResultFromRows(res.Columns, res.Rows))
	}
	em, err := r.sess.RewriteSQL(line, r.backend.Dialect())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if r.showRewrite {
		fmt.Printf("-- shipped to %s: %s\n", r.backend.Name(), em.SQL)
		fmt.Printf("-- with %d bound args\n", len(em.Args))
	}
	rows, err := r.backend.Query(ctx, em, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer rows.Close()
	printRows(rows)
}

// execOnBackend runs the prepared statement through the active backend
// from its cached per-dialect emission (sieve.BackendStmtQuery), seeding
// fakes with the embedded result first.
func (r *repl) execOnBackend() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if r.backendFake != nil {
		res, err := r.prepared.Execute(ctx, r.sess)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		r.backendFake.Push(backendtest.ResultFromRows(res.Columns, res.Rows))
	}
	rows, err := sieve.BackendStmtQuery(ctx, r.backend, r.sess, r.prepared)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer rows.Close()
	printRows(rows)
	fmt.Printf("(%d rewrites amortised over executions)\n", r.prepared.Rewrites())
}

// setBackend resolves a \backend spec, closing any previous backend.
func (r *repl) setBackend(spec string) {
	if r.backend != nil {
		r.backend.Close()
		r.backend, r.backendFake = nil, nil
	}
	if spec == "off" {
		fmt.Println("backend = embedded session (direct)")
		return
	}
	b, fake, err := backend.For(spec, r.db)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	r.backend, r.backendFake = b, fake
	fmt.Printf("backend = %s (dialect %s)\n", b.Name(), b.Dialect())
}

func (r *repl) handleMeta(line string) (quit bool) {
	fields := strings.Fields(line)
	qm := r.sess.Metadata()
	switch fields[0] {
	case "\\quit", "\\q":
		return true
	case "\\help":
		fmt.Println("\\querier <id> | \\purpose <p> | \\rewrite | \\trace | \\prepare <sql> | \\exec | \\backend <spec> | \\policies | \\guards | \\quit")
	case "\\querier":
		if len(fields) > 1 {
			qm.Querier = fields[1]
			r.sess = r.m.NewSession(qm)
		}
		fmt.Println("querier =", qm.Querier)
	case "\\purpose":
		if len(fields) > 1 {
			qm.Purpose = fields[1]
			r.sess = r.m.NewSession(qm)
		}
		fmt.Println("purpose =", qm.Purpose)
	case "\\rewrite":
		r.showRewrite = !r.showRewrite
		fmt.Println("show rewrite =", r.showRewrite)
	case "\\trace":
		r.showTrace = !r.showTrace
		fmt.Println("show trace =", r.showTrace)
	case "\\prepare":
		sql := strings.TrimSpace(strings.TrimPrefix(line, "\\prepare"))
		if sql == "" {
			fmt.Println("usage: \\prepare <sql>")
			break
		}
		stmt, err := r.m.Prepare(sql)
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		r.prepared = stmt
		fmt.Println("prepared:", sql)
	case "\\exec":
		if r.prepared == nil {
			fmt.Println("nothing prepared; \\prepare <sql> first")
			break
		}
		if r.backend != nil {
			r.execOnBackend()
			break
		}
		r.run(func(ctx context.Context) (*sieve.Rows, error) {
			return r.prepared.Query(ctx, r.sess)
		})
		fmt.Printf("(%d rewrites amortised over executions)\n", r.prepared.Rewrites())
	case "\\backend":
		if len(fields) < 2 {
			name := "off (embedded session)"
			if r.backend != nil {
				name = r.backend.Name()
			}
			fmt.Println("backend =", name)
			fmt.Println("usage: \\backend embedded | fake-mysql | fake-postgres | driver://dsn | off")
			break
		}
		r.setBackend(fields[1])
	case "\\policies":
		ps := r.m.Store().PoliciesFor(qm, workload.TableWiFi, r.m.Groups())
		fmt.Printf("%d policies apply to %s/%s on %s\n", len(ps), qm.Querier, qm.Purpose, workload.TableWiFi)
	case "\\guards":
		if ge, ok := r.m.GuardedExpression(qm, workload.TableWiFi); ok {
			fmt.Print(ge.String())
		} else {
			fmt.Println("no cached guarded expression (run a query first)")
		}
	default:
		fmt.Println("unknown command; \\help for help")
	}
	return false
}

// rowStream is the printable surface sieve.Rows and sieve.BackendRows
// share.
type rowStream interface {
	Columns() []string
	Next() bool
	Row() sieve.Row
	Err() error
	Close() error
}

// printRows streams a result to the terminal. Past maxRows the Rows is
// closed, which terminates the underlying scan — the remaining row count
// is intentionally not known.
func printRows(rows rowStream) {
	const maxRows = 20
	fmt.Println(strings.Join(rows.Columns(), " | "))
	n := 0
	for rows.Next() {
		if n == maxRows {
			rows.Close()
			fmt.Println("... (output truncated; scan stopped)")
			break
		}
		r := rows.Row()
		cells := make([]string, len(r))
		for j, v := range r {
			cells[j] = v.String()
		}
		fmt.Println(strings.Join(cells, " | "))
		n++
	}
	if err := rows.Err(); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("(%d rows shown)\n", n)
}
