package sieve_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun builds and runs every example binary end to end. It keeps
// the documented entry points from rotting; skipped under -short since each
// `go run` pays a build.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples smoke test skipped in -short mode")
	}
	examples := []struct {
		dir  string
		want string // substring expected in stdout
	}{
		{"./examples/quickstart", "Mallory sees 0 rows"},
		{"./examples/sqldriver", "alice sees 3 rows via database/sql"},
		{"./examples/smartcampus", "guarded expression"},
		{"./examples/mall", "speedup"},
		{"./examples/dynamicpolicies", "deferred"},
	}
	for _, ex := range examples {
		ex := ex
		t.Run(strings.TrimPrefix(ex.dir, "./examples/"), func(t *testing.T) {
			out, err := exec.Command("go", "run", ex.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", ex.dir, err, out)
			}
			if !strings.Contains(string(out), ex.want) {
				t.Errorf("%s output missing %q:\n%s", ex.dir, ex.want, out)
			}
		})
	}
}
