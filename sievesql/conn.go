package sievesql

import (
	"context"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"

	"github.com/sieve-db/sieve/internal/core"
	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/policy"
)

// errNoPlaceholders rejects parameterised statements: the middleware's
// parser takes literal SQL; parameterisation happens on the *outbound*
// side, where the emitters lift literals into Emission.Args for the
// backend. Inbound placeholder support would require binding args before
// the policy rewrite, which is future work.
var errNoPlaceholders = errors.New(
	"sievesql: placeholder arguments are not supported; inline literals (SIEVE parameterises emissions itself)")

// errNoTransactions: SIEVE enforces read policies; there is nothing to
// commit.
var errNoTransactions = errors.New("sievesql: transactions are not supported (SIEVE is a read middleware)")

// conn is one driver connection: one sieve session. database/sql
// serialises use of a connection, matching Session's one-goroutine
// contract; the pool maps many goroutines onto many conns, which is how a
// server front end maps connections onto SIEVE.
type conn struct {
	m      *core.Middleware
	qm     policy.Metadata
	sess   *core.Session
	closed bool
}

// session lazily binds the metadata (resolving group memberships once per
// connection).
func (c *conn) session() *core.Session {
	if c.sess == nil {
		c.sess = c.m.NewSession(c.qm)
	}
	return c.sess
}

// Prepare implements driver.Conn.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	return c.PrepareContext(context.Background(), query)
}

// PrepareContext parses once; the policy rewrite is cached on the
// sieve.Stmt per (querier, purpose) and epoch-invalidated by policy
// changes.
func (c *conn) PrepareContext(ctx context.Context, query string) (driver.Stmt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st, err := c.m.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &stmt{c: c, st: st}, nil
}

// Close implements driver.Conn.
func (c *conn) Close() error {
	c.closed = true
	c.sess = nil
	return nil
}

// Begin implements driver.Conn.
func (c *conn) Begin() (driver.Tx, error) { return nil, errNoTransactions }

// BeginTx implements driver.ConnBeginTx (the path database/sql actually
// takes), with the same answer.
func (c *conn) BeginTx(context.Context, driver.TxOptions) (driver.Tx, error) {
	return nil, errNoTransactions
}

// QueryContext implements driver.QueryerContext: statements run without a
// prepared-statement round trip, streaming under ctx.
func (c *conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, errNoPlaceholders
	}
	r, err := c.session().Query(ctx, query)
	if err != nil {
		return nil, err
	}
	return &rows{r: r}, nil
}

// ExecContext implements driver.ExecerContext: the statement runs to
// exhaustion and reports the rows it produced as affected — useful for
// fire-and-count callers; SIEVE has no write path.
func (c *conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	if len(args) > 0 {
		return nil, errNoPlaceholders
	}
	res, err := c.session().Execute(ctx, query)
	if err != nil {
		return nil, err
	}
	return driver.RowsAffected(len(res.Rows)), nil
}

// Ping implements driver.Pinger; the middleware is in-process.
func (c *conn) Ping(ctx context.Context) error { return ctx.Err() }

// IsValid implements driver.Validator for pool reuse.
func (c *conn) IsValid() bool { return !c.closed }

// ResetSession implements driver.SessionResetter: session state is the
// immutable metadata, so reuse is always clean.
func (c *conn) ResetSession(context.Context) error { return nil }

// CheckNamedValue implements driver.NamedValueChecker only to fail fast
// with the package's own message instead of the default converter's.
func (c *conn) CheckNamedValue(*driver.NamedValue) error { return errNoPlaceholders }

// stmt is a prepared statement: its sieve.Stmt caches the rewritten plan
// (and per-dialect emissions) per (querier, purpose) across executions
// and across the pool's connections to the same middleware.
type stmt struct {
	c  *conn
	st *core.Stmt
}

// Close implements driver.Stmt; the plan cache lives on the sieve.Stmt
// and is dropped with it.
func (s *stmt) Close() error { return nil }

// NumInput implements driver.Stmt: sieve SQL carries no placeholders.
func (s *stmt) NumInput() int { return 0 }

// Exec implements driver.Stmt.
func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	if len(args) > 0 {
		return nil, errNoPlaceholders
	}
	return s.ExecContext(context.Background(), nil)
}

// ExecContext implements driver.StmtExecContext.
func (s *stmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	if len(args) > 0 {
		return nil, errNoPlaceholders
	}
	res, err := s.st.Execute(ctx, s.c.session())
	if err != nil {
		return nil, err
	}
	return driver.RowsAffected(len(res.Rows)), nil
}

// Query implements driver.Stmt.
func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, errNoPlaceholders
	}
	return s.QueryContext(context.Background(), nil)
}

// QueryContext implements driver.StmtQueryContext: the cached plan
// streams under ctx.
func (s *stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, errNoPlaceholders
	}
	r, err := s.st.Query(ctx, s.c.session())
	if err != nil {
		return nil, err
	}
	return &rows{r: r}, nil
}

// rows adapts the engine's streaming result to driver.Rows: tuples are
// produced on demand, values cross as their native Go forms, and Close —
// from the caller or database/sql's context watchdog — releases the
// underlying guarded scan early.
type rows struct {
	r *engine.Rows
}

// Columns implements driver.Rows.
func (r *rows) Columns() []string { return r.r.Columns() }

// Close implements driver.Rows.
func (r *rows) Close() error { return r.r.Close() }

// Next implements driver.Rows.
func (r *rows) Next(dest []driver.Value) error {
	if !r.r.Next() {
		if err := r.r.Err(); err != nil {
			return err
		}
		return io.EOF
	}
	row := r.r.Row()
	if len(row) != len(dest) {
		return fmt.Errorf("sievesql: row has %d values, result declares %d columns", len(row), len(dest))
	}
	for i, v := range row {
		dest[i] = v.Native()
	}
	return nil
}
