package sievesql

import (
	"context"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"

	"github.com/sieve-db/sieve/internal/core"
	"github.com/sieve-db/sieve/internal/engine"
	"github.com/sieve-db/sieve/internal/policy"
	"github.com/sieve-db/sieve/internal/storage"
)

// errNoTransactions: SIEVE enforces read policies; there is nothing to
// commit.
var errNoTransactions = errors.New("sievesql: transactions are not supported (SIEVE is a read middleware)")

// bindArgs converts driver named values to engine scalars. Only ordinal
// (`?`) parameters exist in SIEVE's dialect, so named arguments are
// rejected; values convert through storage.FromNative, binding args
// *before* the policy rewrite so guards and sargs see real literals.
func bindArgs(args []driver.NamedValue) ([]storage.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]storage.Value, len(args))
	for i, a := range args {
		if a.Name != "" {
			return nil, fmt.Errorf("sievesql: named argument %q not supported; use ordinal ? placeholders", a.Name)
		}
		v, err := storage.FromNative(a.Value)
		if err != nil {
			return nil, fmt.Errorf("sievesql: argument %d: %w", a.Ordinal, err)
		}
		out[i] = v
	}
	return out, nil
}

// conn is one driver connection: one sieve session. database/sql
// serialises use of a connection, matching Session's one-goroutine
// contract; the pool maps many goroutines onto many conns, which is how a
// server front end maps connections onto SIEVE.
type conn struct {
	m      *core.Middleware
	qm     policy.Metadata
	sess   *core.Session
	closed bool
}

// session lazily binds the metadata (resolving group memberships once per
// connection).
func (c *conn) session() *core.Session {
	if c.sess == nil {
		c.sess = c.m.NewSession(c.qm)
	}
	return c.sess
}

// Prepare implements driver.Conn.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	return c.PrepareContext(context.Background(), query)
}

// PrepareContext parses once; the policy rewrite is cached on the
// sieve.Stmt per (querier, purpose) and epoch-invalidated by policy
// changes.
func (c *conn) PrepareContext(ctx context.Context, query string) (driver.Stmt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st, err := c.m.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &stmt{c: c, st: st}, nil
}

// Close implements driver.Conn.
func (c *conn) Close() error {
	c.closed = true
	c.sess = nil
	return nil
}

// Begin implements driver.Conn.
func (c *conn) Begin() (driver.Tx, error) { return nil, errNoTransactions }

// BeginTx implements driver.ConnBeginTx (the path database/sql actually
// takes), with the same answer.
func (c *conn) BeginTx(context.Context, driver.TxOptions) (driver.Tx, error) {
	return nil, errNoTransactions
}

// QueryContext implements driver.QueryerContext: statements run without a
// prepared-statement round trip, streaming under ctx.
func (c *conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	vals, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	r, err := c.session().QueryArgs(ctx, query, vals)
	if err != nil {
		return nil, err
	}
	return &rows{r: r}, nil
}

// ExecContext implements driver.ExecerContext: the statement runs to
// exhaustion and reports the rows it produced as affected — useful for
// fire-and-count callers; SIEVE has no write path.
func (c *conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	vals, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	res, err := c.session().ExecuteArgs(ctx, query, vals)
	if err != nil {
		return nil, err
	}
	return driver.RowsAffected(len(res.Rows)), nil
}

// Ping implements driver.Pinger; the middleware is in-process.
func (c *conn) Ping(ctx context.Context) error { return ctx.Err() }

// IsValid implements driver.Validator for pool reuse.
func (c *conn) IsValid() bool { return !c.closed }

// ResetSession implements driver.SessionResetter: session state is the
// immutable metadata, so reuse is always clean.
func (c *conn) ResetSession(context.Context) error { return nil }

// CheckNamedValue implements driver.NamedValueChecker: arguments are
// accepted when they convert to an engine scalar, bypassing the default
// converter (which would reject time-of-day strings and flatten NULL
// handling we want storage.FromNative to own).
func (c *conn) CheckNamedValue(nv *driver.NamedValue) error {
	if nv.Name != "" {
		return fmt.Errorf("sievesql: named argument %q not supported; use ordinal ? placeholders", nv.Name)
	}
	if _, err := storage.FromNative(nv.Value); err != nil {
		return fmt.Errorf("sievesql: argument %d: %w", nv.Ordinal, err)
	}
	return nil
}

// stmt is a prepared statement: its sieve.Stmt caches the rewritten plan
// (and per-dialect emissions) per (querier, purpose) across executions
// and across the pool's connections to the same middleware.
type stmt struct {
	c  *conn
	st *core.Stmt
}

// Close implements driver.Stmt; the plan cache lives on the sieve.Stmt
// and is dropped with it.
func (s *stmt) Close() error { return nil }

// NumInput implements driver.Stmt: the placeholder count from the
// prepared parse, letting database/sql enforce argument arity.
func (s *stmt) NumInput() int { return s.st.NumInput() }

// namedValues adapts the positional driver.Value form (the non-Context
// driver.Stmt entry points) to named values.
func namedValues(args []driver.Value) []driver.NamedValue {
	if len(args) == 0 {
		return nil
	}
	out := make([]driver.NamedValue, len(args))
	for i, v := range args {
		out[i] = driver.NamedValue{Ordinal: i + 1, Value: v}
	}
	return out
}

// Exec implements driver.Stmt.
func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	return s.ExecContext(context.Background(), namedValues(args))
}

// ExecContext implements driver.StmtExecContext.
func (s *stmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	vals, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	res, err := s.st.ExecuteArgs(ctx, s.c.session(), vals)
	if err != nil {
		return nil, err
	}
	return driver.RowsAffected(len(res.Rows)), nil
}

// Query implements driver.Stmt.
func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.QueryContext(context.Background(), namedValues(args))
}

// QueryContext implements driver.StmtQueryContext: the cached plan
// streams under ctx (placeholder statements bind-then-rewrite per call).
func (s *stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	vals, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	r, err := s.st.QueryArgs(ctx, s.c.session(), vals)
	if err != nil {
		return nil, err
	}
	return &rows{r: r}, nil
}

// rows adapts the engine's streaming result to driver.Rows: tuples are
// produced on demand, values cross as their native Go forms, and Close —
// from the caller or database/sql's context watchdog — releases the
// underlying guarded scan early.
type rows struct {
	r *engine.Rows
}

// Columns implements driver.Rows.
func (r *rows) Columns() []string { return r.r.Columns() }

// Close implements driver.Rows.
func (r *rows) Close() error { return r.r.Close() }

// Next implements driver.Rows.
func (r *rows) Next(dest []driver.Value) error {
	if !r.r.Next() {
		if err := r.r.Err(); err != nil {
			return err
		}
		return io.EOF
	}
	row := r.r.Row()
	if len(row) != len(dest) {
		return fmt.Errorf("sievesql: row has %d values, result declares %d columns", len(row), len(dest))
	}
	for i, v := range row {
		dest[i] = v.Native()
	}
	return nil
}
