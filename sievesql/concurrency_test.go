package sievesql_test

import (
	"context"
	"database/sql"
	"errors"
	"fmt"
	"sync"
	"testing"

	sieve "github.com/sieve-db/sieve"
	"github.com/sieve-db/sieve/sievesql"
)

// TestDriverPoolConcurrency runs parallel queriers through pooled
// connections — two sql.DB handles (different sessions) with
// SetMaxOpenConns(8), eight workers each, prepared and unprepared paths
// mixed, with a concurrent policy writer bumping the epoch. Run under
// -race -cpu=1,4 in CI.
func TestDriverPoolConcurrency(t *testing.T) {
	m, _ := buildMiddleware(t, 40)
	// bob holds owner 8's rows from the start; carol gets policies
	// appended live by the writer below.
	if err := m.AddPolicy(&sieve.Policy{
		Owner: 8, Querier: "bob", Purpose: "audit", Relation: "events", Action: sieve.Allow,
	}); err != nil {
		t.Fatal(err)
	}

	open := func(querier string) *sql.DB {
		db := sql.OpenDB(sievesql.NewConnector(m, sieve.Metadata{Querier: querier, Purpose: "audit"}))
		db.SetMaxOpenConns(8)
		t.Cleanup(func() { db.Close() })
		return db
	}
	alice, bob := open("alice"), open("bob")

	const workers = 8
	const iters = 20
	var wg sync.WaitGroup
	errs := make(chan error, workers*2+1)

	count := func(db *sql.DB, prepared *sql.Stmt) (int, error) {
		var rows *sql.Rows
		var err error
		if prepared != nil {
			rows, err = prepared.Query()
		} else {
			rows, err = db.Query("SELECT id, owner FROM events")
		}
		if err != nil {
			return 0, err
		}
		defer rows.Close()
		n := 0
		for rows.Next() {
			n++
		}
		return n, rows.Err()
	}

	aliceSt, err := alice.Prepare("SELECT id, owner FROM events")
	if err != nil {
		t.Fatal(err)
	}
	defer aliceSt.Close()

	for w := 0; w < workers; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				st := aliceSt
				if i%2 == 0 {
					st = nil
				}
				n, err := count(alice, st)
				if err != nil {
					errs <- fmt.Errorf("alice worker %d: %w", w, err)
					return
				}
				if n != 20 {
					errs <- fmt.Errorf("alice worker %d saw %d rows, want 20", w, n)
					return
				}
			}
		}(w)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n, err := count(bob, nil)
				if err != nil {
					errs <- fmt.Errorf("bob worker %d: %w", w, err)
					return
				}
				if n != 20 {
					errs <- fmt.Errorf("bob worker %d saw %d rows, want 20", w, n)
					return
				}
			}
		}(w)
	}
	// Writer: policy inserts for a third querier bump the epoch under the
	// readers, forcing live plan re-rewrites without changing what alice
	// and bob may see.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := m.AddPolicy(&sieve.Policy{
				Owner: 7, Querier: "carol", Purpose: "audit", Relation: "events", Action: sieve.Allow,
				Conditions: []sieve.ObjectCondition{
					sieve.Compare("id", sieve.Le, sieve.Int(int64(i))),
				},
			}); err != nil {
				errs <- fmt.Errorf("writer: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDriverCancellationMidScan cancels the query context mid-iteration:
// the scan must stop within the executor's check interval and surface
// context.Canceled through sql.Rows.Err.
func TestDriverCancellationMidScan(t *testing.T) {
	const n = 20000
	m, _ := buildMiddleware(t, n, sieve.WithForcedStrategy(sieve.LinearScan))
	db := sql.OpenDB(sievesql.NewConnector(m, sieve.Metadata{Querier: "alice", Purpose: "audit"}))
	defer db.Close()

	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.QueryContext(ctx, "SELECT id FROM events")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	cancel()
	extra := 0
	for rows.Next() {
		extra++
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
	if extra > 512 {
		t.Fatalf("scan produced %d rows after cancellation", extra)
	}
}

// TestDriverEarlyCloseCounters closes sql.Rows after a handful of rows:
// the release must propagate through the driver into the engine so the
// guarded scan terminates with tuple counters far below the table size.
func TestDriverEarlyCloseCounters(t *testing.T) {
	const n = 20000
	m, db0 := buildMiddleware(t, n, sieve.WithForcedStrategy(sieve.LinearScan))
	db := sql.OpenDB(sievesql.NewConnector(m, sieve.Metadata{Querier: "alice", Purpose: "audit"}))
	defer db.Close()

	// Warm the guard cache so the measured query is scan-only.
	if _, err := db.Exec("SELECT id FROM events LIMIT 1"); err != nil {
		t.Fatal(err)
	}
	db0.ResetCounters()

	rows, err := db.Query("SELECT id FROM events")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !rows.Next() {
			t.Fatalf("row %d missing: %v", i, rows.Err())
		}
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if got := db0.CountersSnapshot().TuplesRead; got >= n/2 {
		t.Fatalf("early Close still read %d tuples of %d", got, n)
	}
}
