// Package sievesql registers SIEVE as a standard database/sql driver, so
// a database-backed application integrates through the API it already
// speaks instead of bespoke middleware calls:
//
//	m, _ := sieve.New(store)          // the middleware, built as usual
//	sievesql.SetDefault(m)            // make it reachable from DSNs
//	db, _ := sql.Open("sieve", "querier=prof1&purpose=analytics")
//	rows, _ := db.QueryContext(ctx, "SELECT * FROM WiFi_Dataset")
//
// Every driver connection is one sieve.Session: the DSN binds the query
// metadata (querier identity and purpose, the paper's §3.2 context), and
// every statement on the connection is policy-rewritten under it. Results
// stream — sql.Rows.Next pulls tuples from the engine's iterator pipeline,
// the query context cancels mid-scan, and closing the rows early releases
// the guarded scan. Prepared statements (db.Prepare) map onto sieve.Stmt,
// so the parse and the policy rewrite are cached per (querier, purpose)
// and invalidated by policy changes.
//
// # DSN grammar
//
// A DSN is a URL query string; keys beyond these are rejected:
//
//	querier=<identity>      required: who is asking
//	purpose=<purpose>       optional: what for (empty means unspecified)
//	mw=<name>               optional: a middleware registered with
//	                        Register; absent means the SetDefault one
//
// Because a SIEVE middleware is an in-process object, the DSN names one
// previously registered with Register/SetDefault. To skip the registry
// entirely (tests, multi-tenant servers), build a connector directly:
//
//	db := sql.OpenDB(sievesql.NewConnector(m, sieve.Metadata{Querier: "prof1"}))
//
// Column values surface as their native Go types (storage.Value.Native):
// INT as int64, FLOAT as float64, VARCHAR as string, BOOL as bool, DATE
// as time.Time, TIME as its "HH:MM:SS" string, NULL as nil. Scan into a
// ScanValue to keep the engine's tagged form instead.
package sievesql

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"net/url"
	"sync"

	"github.com/sieve-db/sieve/internal/core"
	"github.com/sieve-db/sieve/internal/policy"
	"github.com/sieve-db/sieve/internal/storage"
)

// DriverName is the name the package registers with database/sql.
const DriverName = "sieve"

func init() { sql.Register(DriverName, &Driver{}) }

// defaultName keys the SetDefault middleware in the registry.
const defaultName = ""

var (
	regMu       sync.RWMutex
	middlewares = make(map[string]*core.Middleware)
)

// Register makes m reachable from DSNs as mw=<name>. Registering an
// existing name replaces it (last wins — intended for application startup
// and tests, not hot swapping under live connections).
func Register(name string, m *core.Middleware) {
	regMu.Lock()
	defer regMu.Unlock()
	middlewares[name] = m
}

// SetDefault registers m as the middleware used by DSNs without an mw
// key.
func SetDefault(m *core.Middleware) { Register(defaultName, m) }

// lookup resolves a registered middleware by name.
func lookup(name string) (*core.Middleware, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	m, ok := middlewares[name]
	if ok {
		return m, nil
	}
	if name == defaultName {
		return nil, fmt.Errorf("sievesql: no default middleware; call sievesql.SetDefault (or name one with mw=)")
	}
	return nil, fmt.Errorf("sievesql: no middleware registered as %q", name)
}

// Driver is the database/sql driver. The package registers one as
// "sieve"; zero values are equally usable with sql.OpenDB via
// OpenConnector.
type Driver struct{}

// Open implements driver.Driver.
func (d *Driver) Open(dsn string) (driver.Conn, error) {
	c, err := d.OpenConnector(dsn)
	if err != nil {
		return nil, err
	}
	return &conn{m: c.(*Connector).m, qm: c.(*Connector).qm}, nil
}

// OpenConnector implements driver.DriverContext: the DSN is parsed once,
// not per connection.
func (d *Driver) OpenConnector(dsn string) (driver.Connector, error) {
	vals, err := url.ParseQuery(dsn)
	if err != nil {
		return nil, fmt.Errorf("sievesql: malformed DSN %q: %w", dsn, err)
	}
	var qm policy.Metadata
	var mwName string
	for k, v := range vals {
		if len(v) != 1 {
			return nil, fmt.Errorf("sievesql: DSN key %q given %d times", k, len(v))
		}
		switch k {
		case "querier":
			qm.Querier = v[0]
		case "purpose":
			qm.Purpose = v[0]
		case "mw":
			mwName = v[0]
		default:
			return nil, fmt.Errorf("sievesql: unknown DSN key %q (want querier, purpose, mw)", k)
		}
	}
	if qm.Querier == "" {
		return nil, fmt.Errorf("sievesql: DSN %q lacks the required querier key", dsn)
	}
	m, err := lookup(mwName)
	if err != nil {
		return nil, err
	}
	return &Connector{m: m, qm: qm}, nil
}

// Connector binds a middleware and query metadata; sql.OpenDB(connector)
// yields a pool whose every connection is a session under that metadata.
type Connector struct {
	m  *core.Middleware
	qm policy.Metadata
}

// NewConnector builds a connector directly from a middleware, bypassing
// the DSN registry.
func NewConnector(m *core.Middleware, qm policy.Metadata) *Connector {
	return &Connector{m: m, qm: qm}
}

// Connect implements driver.Connector: one connection is one session.
func (c *Connector) Connect(ctx context.Context) (driver.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &conn{m: c.m, qm: c.qm}, nil
}

// Driver implements driver.Connector.
func (c *Connector) Driver() driver.Driver { return &Driver{} }

// Metadata returns the query metadata the connector binds.
func (c *Connector) Metadata() policy.Metadata { return c.qm }

// ScanValue is a sql.Scanner that decodes any column into the engine's
// tagged scalar, preserving NULL (unlike scanning into concrete Go
// types). Re-type wire-lossy kinds with storage.CoerceKind when the
// column kind is known.
type ScanValue struct {
	V storage.Value
}

// Scan implements sql.Scanner.
func (s *ScanValue) Scan(src any) error {
	v, err := storage.FromNative(src)
	if err != nil {
		return fmt.Errorf("sievesql: %w", err)
	}
	s.V = v
	return nil
}
