package sievesql_test

import (
	"context"
	"database/sql"
	"errors"
	"strings"
	"testing"
	"time"

	sieve "github.com/sieve-db/sieve"
	"github.com/sieve-db/sieve/sievesql"
)

// buildMiddleware creates one protected relation with n rows across two
// owners: rows 0..n/2-1 owned by 7 (granted to alice/audit), the rest by
// 8 (granted to nobody initially).
func buildMiddleware(t testing.TB, n int, opts ...sieve.Option) (*sieve.Middleware, *sieve.DB) {
	t.Helper()
	db := sieve.NewDB(sieve.MySQL())
	schema := sieve.MustSchema(
		sieve.Column{Name: "id", Type: sieve.KindInt},
		sieve.Column{Name: "owner", Type: sieve.KindInt},
		sieve.Column{Name: "day", Type: sieve.KindDate},
		sieve.Column{Name: "note", Type: sieve.KindString},
	)
	if _, err := db.CreateTable("events", schema); err != nil {
		t.Fatal(err)
	}
	rows := make([]sieve.Row, 0, n)
	for i := 0; i < n; i++ {
		owner := int64(7)
		if i >= n/2 {
			owner = 8
		}
		note := sieve.Str("n")
		if i%5 == 0 {
			note = sieve.Value{} // NULL
		}
		rows = append(rows, sieve.Row{
			sieve.Int(int64(i)), sieve.Int(owner), sieve.DateOf("2000-01-02"), note,
		})
	}
	if err := db.BulkInsert("events", rows); err != nil {
		t.Fatal(err)
	}
	store, err := sieve.NewStore(db)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sieve.New(store, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Protect("events"); err != nil {
		t.Fatal(err)
	}
	if err := store.Insert(&sieve.Policy{
		Owner: 7, Querier: "alice", Purpose: "audit", Relation: "events", Action: sieve.Allow,
	}); err != nil {
		t.Fatal(err)
	}
	return m, db
}

// TestOpenAndQuery goes through the registered driver name and DSN: the
// connection is a session, rows stream with native Go types, and a
// querier without policies sees nothing (default deny).
func TestOpenAndQuery(t *testing.T) {
	m, _ := buildMiddleware(t, 10)
	sievesql.SetDefault(m)
	sievesql.Register("fixture", m)

	for _, dsn := range []string{"querier=alice&purpose=audit", "querier=alice&purpose=audit&mw=fixture"} {
		db, err := sql.Open(sievesql.DriverName, dsn)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		if err := db.Ping(); err != nil {
			t.Fatal(err)
		}
		rows, err := db.QueryContext(context.Background(), "SELECT id, day FROM events ORDER BY id")
		if err != nil {
			t.Fatal(err)
		}
		var (
			n    int
			id   int64
			day  time.Time
			last int64 = -1
		)
		for rows.Next() {
			if err := rows.Scan(&id, &day); err != nil {
				t.Fatal(err)
			}
			if id <= last {
				t.Fatalf("ids out of order: %d after %d", id, last)
			}
			last = id
			if got := day.Format("2006-01-02"); got != "2000-01-02" {
				t.Fatalf("DATE surfaced as %s", got)
			}
			n++
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		rows.Close()
		if n != 5 {
			t.Fatalf("alice sees %d rows, want 5", n)
		}
	}

	// Default deny: no policies for mallory.
	mal := sql.OpenDB(sievesql.NewConnector(m, sieve.Metadata{Querier: "mallory", Purpose: "audit"}))
	defer mal.Close()
	var n int
	if err := mal.QueryRow("SELECT count(*) FROM events").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("mallory counts %d rows, want 0", n)
	}
}

// TestDSNValidation pins the DSN grammar's error surface.
func TestDSNValidation(t *testing.T) {
	m, _ := buildMiddleware(t, 2)
	sievesql.SetDefault(m)
	bad := []struct {
		dsn, want string
	}{
		{"purpose=audit", "querier"},
		{"querier=a&flavour=vanilla", "unknown DSN key"},
		{"querier=a&querier=b", "2 times"},
		{"querier=a&mw=nosuch", "no middleware registered"},
		{"querier=%zz", "malformed"},
	}
	for _, c := range bad {
		db, err := sql.Open(sievesql.DriverName, c.dsn)
		if err == nil {
			// sql.Open defers DriverContext errors to first use.
			err = db.Ping()
			db.Close()
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("DSN %q: err = %v, want substring %q", c.dsn, err, c.want)
		}
	}
}

// TestPreparedStatement covers the prepared path: Query and Exec through
// driver.Stmt, and epoch invalidation — a policy insert between runs
// must be visible without re-preparing.
func TestPreparedStatement(t *testing.T) {
	m, _ := buildMiddleware(t, 10)
	db := sql.OpenDB(sievesql.NewConnector(m, sieve.Metadata{Querier: "alice", Purpose: "audit"}))
	defer db.Close()
	db.SetMaxOpenConns(1)

	st, err := db.Prepare("SELECT id FROM events")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	count := func() int {
		rows, err := st.Query()
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		n := 0
		for rows.Next() {
			n++
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if got := count(); got != 5 {
		t.Fatalf("prepared run 1: %d rows, want 5", got)
	}
	if got := count(); got != 5 {
		t.Fatalf("prepared run 2: %d rows, want 5", got)
	}

	// Grant alice the other owner's rows: the cached plan must invalidate.
	if err := m.AddPolicy(&sieve.Policy{
		Owner: 8, Querier: "alice", Purpose: "audit", Relation: "events", Action: sieve.Allow,
	}); err != nil {
		t.Fatal(err)
	}
	if got := count(); got != 10 {
		t.Fatalf("after policy insert: %d rows, want 10", got)
	}

	res, err := st.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if n, err := res.RowsAffected(); err != nil || n != 10 {
		t.Fatalf("Exec rows = %d, %v", n, err)
	}
}

// TestScanValue checks NULL survives through the driver into the tagged
// scalar, where concrete destinations would error.
func TestScanValue(t *testing.T) {
	m, _ := buildMiddleware(t, 10)
	db := sql.OpenDB(sievesql.NewConnector(m, sieve.Metadata{Querier: "alice", Purpose: "audit"}))
	defer db.Close()

	rows, err := db.Query("SELECT id, note FROM events ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	nulls := 0
	for rows.Next() {
		var id sievesql.ScanValue
		var note sievesql.ScanValue
		if err := rows.Scan(&id, &note); err != nil {
			t.Fatal(err)
		}
		if id.V.K != sieve.KindInt {
			t.Fatalf("id decoded as %v", id.V.K)
		}
		if note.V.IsNull() {
			nulls++
		} else if note.V.K != sieve.KindString {
			t.Fatalf("note decoded as %v", note.V.K)
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if nulls != 1 { // ids 0..4 visible; id 0 has NULL note
		t.Fatalf("saw %d NULL notes, want 1", nulls)
	}
}

// TestUnsupportedSurface pins the clear-error contract for transactions
// and placeholder arity/name mistakes.
func TestUnsupportedSurface(t *testing.T) {
	m, _ := buildMiddleware(t, 4)
	db := sql.OpenDB(sievesql.NewConnector(m, sieve.Metadata{Querier: "alice", Purpose: "audit"}))
	defer db.Close()

	if _, err := db.Begin(); err == nil || !strings.Contains(err.Error(), "transactions") {
		t.Errorf("Begin: err = %v", err)
	}
	if _, err := db.Exec("SELECT id FROM nosuch"); err == nil {
		t.Error("Exec on a missing relation must error")
	}
	// Arity mismatches error cleanly in both directions.
	if _, err := db.Query("SELECT id FROM events WHERE id = ?"); err == nil ||
		!strings.Contains(err.Error(), "placeholder") {
		t.Errorf("missing arg: err = %v", err)
	}
	if _, err := db.Query("SELECT id FROM events", 1); err == nil {
		t.Errorf("surplus arg: err = %v", err)
	}
	// Named arguments have no spelling in SIEVE's dialect.
	if _, err := db.Query("SELECT id FROM events WHERE id = ?", sql.Named("id", 1)); err == nil ||
		!strings.Contains(err.Error(), "named argument") {
		t.Errorf("named arg: err = %v", err)
	}
}

// TestPlaceholderQueries binds inbound `?` arguments through parse →
// rewrite → execute: values act exactly like inline literals, policy
// enforcement included, and prepared statements rebind per execution.
func TestPlaceholderQueries(t *testing.T) {
	m, _ := buildMiddleware(t, 10)
	db := sql.OpenDB(sievesql.NewConnector(m, sieve.Metadata{Querier: "alice", Purpose: "audit"}))
	defer db.Close()

	// Direct query: alice holds owner 7 (rows 0..4), so id >= 2 leaves 3.
	var n int
	if err := db.QueryRow("SELECT count(*) FROM events WHERE id >= ?", 2).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("bound count = %d, want 3", n)
	}

	// The bound value must not grant beyond policy: owner 8 rows stay
	// invisible no matter what the argument says.
	if err := db.QueryRow("SELECT count(*) FROM events WHERE owner = ?", 8).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("owner 8 rows visible through bound arg: %d", n)
	}

	// Prepared statement: rebinding per execution, multiple placeholders,
	// mixed types (DATE arrives as time.Time).
	st, err := db.Prepare("SELECT id FROM events WHERE id BETWEEN ? AND ? AND day = ? ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	day := time.Date(2000, 1, 2, 0, 0, 0, 0, time.UTC)
	for _, tc := range []struct {
		lo, hi int64
		want   int
	}{{0, 9, 5}, {1, 3, 3}, {4, 9, 1}} {
		rows, err := st.Query(tc.lo, tc.hi, day)
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for rows.Next() {
			var id int64
			if err := rows.Scan(&id); err != nil {
				t.Fatal(err)
			}
			got++
		}
		rows.Close()
		if got != tc.want {
			t.Fatalf("[%d,%d]: %d rows, want %d", tc.lo, tc.hi, got, tc.want)
		}
	}
	if _, err := st.Query(int64(1)); err == nil {
		t.Error("prepared statement accepted wrong arity")
	}
}

// TestQueryErrorSurfaces checks parse and rewrite errors come back from
// Query, not as panics or empty results.
func TestQueryErrorSurfaces(t *testing.T) {
	m, _ := buildMiddleware(t, 4)
	db := sql.OpenDB(sievesql.NewConnector(m, sieve.Metadata{Querier: "alice", Purpose: "audit"}))
	defer db.Close()
	if _, err := db.Query("SELEKT broken"); err == nil {
		t.Error("parse error did not surface")
	}
	if _, err := db.Prepare("ALSO ( BROKEN"); err == nil {
		t.Error("prepare parse error did not surface")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, "SELECT id FROM events"); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled ctx: err = %v", err)
	}
}
