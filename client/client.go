// Package client is the Go client for sieve-server, the networked
// deployment of the SIEVE middleware. It wraps the versioned HTTP/JSON
// protocol in an API mirroring the in-process surface: a Session binds
// querier and purpose (fixed server-side by the bearer token), Query
// streams rows, Prepare returns a server-side prepared statement whose
// parse and policy rewrite are cached — and re-done transparently when
// the policy corpus changes.
//
//	c := client.New("http://127.0.0.1:8743", "demo:Prof. Smith:attendance")
//	sess, err := c.OpenSession(ctx, "")
//	defer sess.Close(ctx)
//	rows, err := sess.Query(ctx, "SELECT * FROM WiFi_Dataset")
//	defer rows.Close()
//	for rows.Next() {
//		r := rows.Row() // []any: nil, int64, float64, string, bool, TimeOfDay, Date
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Placeholder queries bind arguments per call:
//
//	st, err := sess.Prepare(ctx, "SELECT * FROM WiFi_Dataset WHERE wifiAP = ?")
//	rows, err := st.Query(ctx, int64(1200))
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/sieve-db/sieve/internal/obs"
	"github.com/sieve-db/sieve/internal/server"
	"github.com/sieve-db/sieve/internal/storage"
)

// TimeOfDay is a TIME column value: seconds since midnight. A distinct
// type so row comparisons cannot confuse it with a plain integer.
type TimeOfDay int64

// Date is a DATE column value: days since the epoch.
type Date int64

// Client speaks to one sieve-server with one bearer token.
type Client struct {
	base  string
	token string
	hc    *http.Client
}

// Option customises a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New builds a client for the server at baseURL (scheme://host[:port])
// authenticating with token.
func New(baseURL, token string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), token: token, hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do issues one JSON request and decodes the 2xx response into out
// (unless nil). Non-2xx responses become errors carrying the server's
// message.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	resp, err := c.send(ctx, method, path, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// send issues the request without consuming the response.
func (c *Client) send(ctx context.Context, method, path string, body any) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return c.hc.Do(req)
}

// decodeError turns a non-2xx response into an error with the server's
// message.
func decodeError(resp *http.Response) error {
	var e server.ErrorResponse
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&e) == nil && e.Error != "" {
		return fmt.Errorf("sieve-server: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("sieve-server: HTTP %d", resp.StatusCode)
}

// Health reports the server's /healthz state; err is non-nil when the
// server is unreachable, and ok is false while it drains.
func (c *Client) Health(ctx context.Context) (ok bool, err error) {
	resp, err := c.send(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	return resp.StatusCode == http.StatusOK, nil
}

// Varz fetches the server's counters.
func (c *Client) Varz(ctx context.Context) (map[string]int64, error) {
	var out map[string]int64
	if err := c.do(ctx, http.MethodGet, "/varz", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// OpenSession opens a session. purpose may be empty when the token pins
// one; the server rejects a purpose conflicting with the token's.
func (c *Client) OpenSession(ctx context.Context, purpose string) (*Session, error) {
	var out server.OpenSessionResponse
	err := c.do(ctx, http.MethodPost, "/v1/sessions", server.OpenSessionRequest{Purpose: purpose}, &out)
	if err != nil {
		return nil, err
	}
	return &Session{c: c, id: out.SessionID, querier: out.Querier, purpose: out.Purpose}, nil
}

// Condition is one object condition of a policy: Attr Op Value, with Op
// one of = != < <= > >=.
type Condition struct {
	Attr  string
	Op    string
	Value any
}

// Policy is the client-side policy description for AddPolicy. Action ""
// means allow.
type Policy struct {
	Owner      int64
	Querier    string
	Purpose    string
	Relation   string
	Action     string
	Conditions []Condition
}

// AddPolicy inserts a policy (admin tokens only) and returns its id.
// Every session's prepared statements observe the change on their next
// execution — the policy epoch invalidates their cached rewrites.
func (c *Client) AddPolicy(ctx context.Context, p Policy) (int64, error) {
	req := server.PolicyRequest{
		Owner: p.Owner, Querier: p.Querier, Purpose: p.Purpose,
		Relation: p.Relation, Action: p.Action,
	}
	for _, cond := range p.Conditions {
		wv, err := encodeArg(cond.Value)
		if err != nil {
			return 0, fmt.Errorf("condition on %s: %w", cond.Attr, err)
		}
		req.Conditions = append(req.Conditions, server.ConditionRequest{Attr: cond.Attr, Op: cond.Op, Value: wv})
	}
	var out server.PolicyResponse
	if err := c.do(ctx, http.MethodPost, "/v1/policies", req, &out); err != nil {
		return 0, err
	}
	return out.ID, nil
}

// RevokePolicy deletes a policy by id (admin tokens only).
func (c *Client) RevokePolicy(ctx context.Context, id int64) error {
	return c.do(ctx, http.MethodDelete, fmt.Sprintf("/v1/policies/%d", id), nil, nil)
}

// Session is an open server-side session: all queries run under its
// (querier, purpose) metadata.
type Session struct {
	c       *Client
	id      string
	querier string
	purpose string
}

// Querier returns the identity the server bound this session to.
func (s *Session) Querier() string { return s.querier }

// Purpose returns the session's query purpose.
func (s *Session) Purpose() string { return s.purpose }

// Close releases the session and its prepared statements server-side.
func (s *Session) Close(ctx context.Context) error {
	return s.c.do(ctx, http.MethodDelete, "/v1/sessions/"+s.id, nil, nil)
}

// Query runs sql and streams the policy-filtered result. args bind `?`
// placeholders in lexical order; see Rows for the iteration contract.
func (s *Session) Query(ctx context.Context, sql string, args ...any) (*Rows, error) {
	wargs, err := encodeArgs(args)
	if err != nil {
		return nil, err
	}
	return s.c.stream(ctx, "/v1/sessions/"+s.id+"/query", server.QueryRequest{SQL: sql, Args: wargs})
}

// QueryTrace is Query with server-side phase tracing enabled: the done
// line carries the query's span tree, available from Rows.Trace after
// iteration completes. Tracing costs a few clock reads per phase.
func (s *Session) QueryTrace(ctx context.Context, sql string, args ...any) (*Rows, error) {
	wargs, err := encodeArgs(args)
	if err != nil {
		return nil, err
	}
	return s.c.stream(ctx, "/v1/sessions/"+s.id+"/query?trace=1", server.QueryRequest{SQL: sql, Args: wargs})
}

// Rewrite returns the policy-rewritten form of sql without executing it.
// dialect "" (or "sieve") yields the middleware's own dialect; "mysql" /
// "postgres" yield emitted SQL plus its lifted bound args.
func (s *Session) Rewrite(ctx context.Context, sql, dialect string) (string, []any, error) {
	var out server.RewriteResponse
	err := s.c.do(ctx, http.MethodPost, "/v1/sessions/"+s.id+"/rewrite",
		server.RewriteRequest{SQL: sql, Dialect: dialect}, &out)
	if err != nil {
		return "", nil, err
	}
	args, err := decodeAnys(out.Args)
	if err != nil {
		return "", nil, err
	}
	return out.SQL, args, nil
}

// Prepare registers a server-side prepared statement: parse and policy
// rewrite are paid once and cached until the policy corpus changes.
func (s *Session) Prepare(ctx context.Context, sql string) (*Stmt, error) {
	var out server.PrepareResponse
	err := s.c.do(ctx, http.MethodPost, "/v1/sessions/"+s.id+"/prepare", server.PrepareRequest{SQL: sql}, &out)
	if err != nil {
		return nil, err
	}
	return &Stmt{s: s, id: out.StmtID, numInput: out.NumInput}, nil
}

// Stmt is a server-side prepared statement.
type Stmt struct {
	s        *Session
	id       string
	numInput int
}

// NumInput reports how many `?` placeholders each execution must bind.
func (st *Stmt) NumInput() int { return st.numInput }

// Query executes the statement with args bound to its placeholders.
func (st *Stmt) Query(ctx context.Context, args ...any) (*Rows, error) {
	wargs, err := encodeArgs(args)
	if err != nil {
		return nil, err
	}
	return st.s.c.stream(ctx, "/v1/sessions/"+st.s.id+"/stmts/"+st.id+"/query",
		server.StmtQueryRequest{Args: wargs})
}

// QueryTrace is Query with server-side phase tracing enabled; see
// Session.QueryTrace.
func (st *Stmt) QueryTrace(ctx context.Context, args ...any) (*Rows, error) {
	wargs, err := encodeArgs(args)
	if err != nil {
		return nil, err
	}
	return st.s.c.stream(ctx, "/v1/sessions/"+st.s.id+"/stmts/"+st.id+"/query?trace=1",
		server.StmtQueryRequest{Args: wargs})
}

// Close deallocates the statement server-side.
func (st *Stmt) Close(ctx context.Context) error {
	return st.s.c.do(ctx, http.MethodDelete, "/v1/sessions/"+st.s.id+"/stmts/"+st.id, nil, nil)
}

// encodeArg converts a native Go argument to its wire form. Supported:
// nil, bool, int, int64, float64, string, time.Time (a DATE at UTC
// midnight, a TIME when only the clock is set), TimeOfDay, Date.
func encodeArg(a any) (server.WireValue, error) {
	v, err := toValue(a)
	if err != nil {
		return server.WireValue{}, err
	}
	return server.EncodeValue(v), nil
}

// toValue maps client argument types onto engine values, reusing the
// driver's conversion for the shared cases.
func toValue(a any) (storage.Value, error) {
	switch x := a.(type) {
	case TimeOfDay:
		return storage.NewTime(int64(x)), nil
	case Date:
		return storage.NewDate(int64(x)), nil
	case int:
		return storage.NewInt(int64(x)), nil
	case time.Time:
		return storage.FromNative(x)
	}
	return storage.FromNative(a)
}

func encodeArgs(args []any) ([]server.WireValue, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]server.WireValue, len(args))
	for i, a := range args {
		wv, err := encodeArg(a)
		if err != nil {
			return nil, fmt.Errorf("arg %d: %w", i+1, err)
		}
		out[i] = wv
	}
	return out, nil
}

// decodeAny maps a wire value to the client's Go representation: nil,
// int64, float64, string, bool, TimeOfDay, Date.
func decodeAny(w server.WireValue) (any, error) {
	v, err := server.DecodeValue(w)
	if err != nil {
		return nil, err
	}
	return FromValue(v), nil
}

// FromValue converts an engine value to the client's Go representation —
// exported so tests can compare in-process rows with wire rows under the
// same mapping.
func FromValue(v storage.Value) any {
	switch v.K {
	case storage.KindNull:
		return nil
	case storage.KindInt:
		return v.I
	case storage.KindFloat:
		return v.F
	case storage.KindString:
		return v.S
	case storage.KindBool:
		return v.I != 0
	case storage.KindTime:
		return TimeOfDay(v.I)
	case storage.KindDate:
		return Date(v.I)
	}
	return nil
}

func decodeAnys(ws []server.WireValue) ([]any, error) {
	if len(ws) == 0 {
		return nil, nil
	}
	out := make([]any, len(ws))
	for i, w := range ws {
		v, err := decodeAny(w)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// stream opens a query response and wraps it as Rows.
func (c *Client) stream(ctx context.Context, path string, body any) (*Rows, error) {
	resp, err := c.send(ctx, http.MethodPost, path, body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	r := &Rows{body: resp.Body, sc: bufio.NewScanner(resp.Body)}
	r.sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	// The first line carries the column names; its arrival is the
	// server's acknowledgement that the query was accepted.
	line, err := r.nextLine()
	if err != nil {
		resp.Body.Close()
		return nil, err
	}
	if line == nil || line.Columns == nil {
		resp.Body.Close()
		return nil, fmt.Errorf("sieve-server: stream did not start with a columns line")
	}
	r.cols = line.Columns
	return r, nil
}

// Rows streams a query result over the wire, mirroring the engine's pull
// surface: Next advances, Row is valid until the next call to Next, Err
// reports what terminated iteration, Close is idempotent and may be
// called early — the server observes the disconnect and stops the scan.
//
// A stream that dies mid-flight (network cut, server drain deadline)
// surfaces an error from Err: results are complete exactly when Err
// returns nil after Next returned false.
type Rows struct {
	body   io.ReadCloser
	sc     *bufio.Scanner
	cols   []string
	cur    []any
	n      int64
	done   bool
	closed bool
	err    error
	stats  *server.StreamCounters
	trace  *obs.SpanNode
	reqID  string
}

// Columns returns the result column names.
func (r *Rows) Columns() []string { return r.cols }

// nextLine reads one NDJSON line; nil without error means EOF.
func (r *Rows) nextLine() (*server.StreamLine, error) {
	if !r.sc.Scan() {
		if err := r.sc.Err(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	var line server.StreamLine
	if err := json.Unmarshal(r.sc.Bytes(), &line); err != nil {
		return nil, fmt.Errorf("sieve-server: bad stream line: %w", err)
	}
	return &line, nil
}

// Next advances to the next row; false on exhaustion, error, or after
// Close.
func (r *Rows) Next() bool {
	if r.closed || r.done || r.err != nil {
		return false
	}
	line, err := r.nextLine()
	if err != nil {
		r.err = err
		r.release()
		return false
	}
	switch {
	case line == nil:
		r.err = fmt.Errorf("sieve-server: stream ended without a done line (connection cut mid-result)")
	case line.Error != "":
		r.err = fmt.Errorf("sieve-server: %s", line.Error)
	case line.Done:
		r.done = true
		r.n = line.Rows
		r.stats = line.Counters
		r.trace = line.Trace
		r.reqID = line.RequestID
	case line.Row != nil:
		row, err := decodeAnys(line.Row)
		if err != nil {
			r.err = err
			break
		}
		r.cur = row
		return true
	default:
		r.err = fmt.Errorf("sieve-server: unrecognised stream line")
	}
	r.release()
	return false
}

// Row returns the current row; valid until the next call to Next.
func (r *Rows) Row() []any { return r.cur }

// Err returns the error that terminated iteration, if any.
func (r *Rows) Err() error { return r.err }

// N reports the server's row count from the done line (0 until the
// stream completes).
func (r *Rows) N() int64 { return r.n }

// Counters returns the query's server-side work tally when the done line
// carried one (embedded backend only); nil otherwise.
func (r *Rows) Counters() *server.StreamCounters { return r.stats }

// Trace returns the query's server-side span tree when it ran with
// tracing (QueryTrace); nil otherwise. Populated once the stream
// completes — after Next returned false with a nil Err.
func (r *Rows) Trace() *obs.SpanNode { return r.trace }

// RequestID returns the id the server assigned this query's request —
// the same value in the server's log lines and X-Request-Id header.
// Populated once the stream completes.
func (r *Rows) RequestID() string { return r.reqID }

// Close stops iteration; closing before exhaustion disconnects the
// stream and the server abandons the scan.
func (r *Rows) Close() error {
	r.release()
	return nil
}

func (r *Rows) release() {
	if r.closed {
		return
	}
	r.closed = true
	r.cur = nil
	_ = r.body.Close()
}
