package sieve_test

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"reflect"
	"testing"

	sieve "github.com/sieve-db/sieve"
	"github.com/sieve-db/sieve/internal/backend"
	"github.com/sieve-db/sieve/internal/backend/backendtest"
	"github.com/sieve-db/sieve/internal/storage"
	"github.com/sieve-db/sieve/internal/workload"
	"github.com/sieve-db/sieve/sievesql"
)

// baselineResult is one corpus query's ground truth: the rows
// Session.Query streams on the embedded engine, plus the per-column kinds
// needed to undo wire-representation loss on decode.
type baselineResult struct {
	name  string
	sql   string
	cols  []string
	rows  []sieve.Row
	kinds []sieve.Kind
}

// corpusBaselines runs the examples corpus through the plain session
// path.
func corpusBaselines(t *testing.T, demo *workload.Demo, sess *sieve.Session) []baselineResult {
	t.Helper()
	ctx := context.Background()
	var out []baselineResult
	for _, q := range demo.Campus.CorpusQueries() {
		rows, err := sess.Query(ctx, q.SQL)
		if err != nil {
			t.Fatalf("%s: baseline: %v", q.Name, err)
		}
		b := baselineResult{name: q.Name, sql: q.SQL, cols: rows.Columns()}
		for rows.Next() {
			b.rows = append(b.rows, rows.Row().Clone())
		}
		if err := rows.Err(); err != nil {
			t.Fatalf("%s: baseline: %v", q.Name, err)
		}
		rows.Close()
		b.kinds = make([]sieve.Kind, len(b.cols))
		for c := range b.kinds {
			for _, r := range b.rows {
				if !r[c].IsNull() {
					b.kinds[c] = r[c].K
					break
				}
			}
		}
		out = append(out, b)
	}
	return out
}

// TestBackendRoundTrip is the acceptance gate for the backend connector
// subsystem: the examples corpus executed through sql.Open("sieve", …)
// and through backend.Remote over the fake mysql/postgres drivers must
// return row-for-row identical results to Session.Query on the embedded
// engine; the SQL the fakes record must be exactly the cached emissions
// (whose shapes the internal/engine golden suite pins), with args bound
// in placeholder order.
func TestBackendRoundTrip(t *testing.T) {
	demo, err := workload.NewDemo(sieve.MySQL())
	if err != nil {
		t.Fatal(err)
	}
	qm := sieve.Metadata{Querier: demo.Querier("auto"), Purpose: "analytics"}
	sess := demo.M.NewSession(qm)
	baselines := corpusBaselines(t, demo, sess)
	nonEmpty := 0
	for _, b := range baselines {
		if len(b.rows) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 5 {
		t.Fatalf("only %d corpus baselines return rows; corpus too weak for a round-trip gate", nonEmpty)
	}

	t.Run("sievesql", func(t *testing.T) {
		db := sql.OpenDB(sievesql.NewConnector(demo.M, qm))
		defer db.Close()
		for _, b := range baselines {
			rows, err := db.QueryContext(context.Background(), b.sql)
			if err != nil {
				t.Fatalf("%s: %v", b.name, err)
			}
			cols, err := rows.Columns()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cols, b.cols) {
				t.Fatalf("%s: columns %v, want %v", b.name, cols, b.cols)
			}
			var got []sieve.Row
			for rows.Next() {
				dest := make([]any, len(cols))
				for i := range dest {
					dest[i] = &sievesql.ScanValue{}
				}
				if err := rows.Scan(dest...); err != nil {
					t.Fatalf("%s: scan: %v", b.name, err)
				}
				row := make(sieve.Row, len(cols))
				for i, d := range dest {
					v, ok := coerce(d.(*sievesql.ScanValue).V, b.kinds[i])
					if !ok {
						t.Fatalf("%s: column %s: cannot coerce %v to %v", b.name, cols[i], d.(*sievesql.ScanValue).V, b.kinds[i])
					}
					row[i] = v
				}
				got = append(got, row)
			}
			if err := rows.Err(); err != nil {
				t.Fatalf("%s: %v", b.name, err)
			}
			rows.Close()
			if !reflect.DeepEqual(got, b.rows) {
				t.Fatalf("%s: database/sql rows diverge from Session.Query:\ngot  %v\nwant %v", b.name, got, b.rows)
			}
		}
	})

	for _, dialect := range []string{"mysql", "postgres"} {
		t.Run("remote-"+dialect, func(t *testing.T) {
			fake := backendtest.New()
			rem, err := backend.NewRemote(sql.OpenDB(fake.Connector()), dialect, backend.WithDeltaHelper())
			if err != nil {
				t.Fatal(err)
			}
			defer rem.Close()
			ctx := context.Background()
			for _, b := range baselines {
				st, err := demo.M.Prepare(b.sql)
				if err != nil {
					t.Fatalf("%s: prepare: %v", b.name, err)
				}
				em, err := st.EmitSQL(sess, dialect)
				if err != nil {
					t.Fatalf("%s: emit: %v", b.name, err)
				}
				fake.Push(backendtest.ResultFromRows(b.cols, b.rows))

				rows, err := backend.StmtQuery(ctx, rem, sess, st)
				if err != nil {
					t.Fatalf("%s: ship: %v", b.name, err)
				}
				var got []sieve.Row
				typed := backend.TypedRows(rows, b.kinds)
				for typed.Next() {
					got = append(got, typed.Row().Clone())
				}
				if err := typed.Err(); err != nil {
					t.Fatalf("%s: decode: %v", b.name, err)
				}
				typed.Close()
				if !reflect.DeepEqual(got, b.rows) {
					t.Fatalf("%s: remote rows diverge from Session.Query:\ngot  %v\nwant %v", b.name, got, b.rows)
				}

				// The shipped statement must be byte-identical to the cached
				// emission, args in placeholder order as native values.
				call, ok := fake.LastCall()
				if !ok {
					t.Fatalf("%s: fake recorded nothing", b.name)
				}
				if call.SQL != em.SQL {
					t.Fatalf("%s: shipped SQL != emission:\nshipped %s\nemitted %s", b.name, call.SQL, em.SQL)
				}
				if len(call.Args) != len(em.Args) {
					t.Fatalf("%s: shipped %d args, emission binds %d", b.name, len(call.Args), len(em.Args))
				}
				for i, a := range em.Args {
					if !reflect.DeepEqual(call.Args[i], driver.Value(a.Native())) {
						t.Fatalf("%s: arg %d = %#v, want %#v", b.name, i+1, call.Args[i], a.Native())
					}
				}
			}
		})
	}
}

// coerce adapts storage.CoerceKind for the baseline comparison (a
// NULL-kind expectation means the baseline column was all-NULL; anything
// coerces).
func coerce(v sieve.Value, k sieve.Kind) (sieve.Value, bool) {
	if k == storage.KindNull { // no kind evidence in the baseline
		return v, true
	}
	return storage.CoerceKind(v, k)
}
