package sieve_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	sieve "github.com/sieve-db/sieve"
)

// buildScanDB creates one protected relation with n rows, all owned by
// owner 7 and granted to "alice"/"audit", with the strategy pinned to
// LinearScan so queries pay a full-table scan unless something terminates
// them early.
func buildScanDB(t *testing.T, n int, opts ...sieve.Option) (*sieve.Middleware, *sieve.DB) {
	t.Helper()
	db := sieve.NewDB(sieve.MySQL())
	schema := sieve.MustSchema(
		sieve.Column{Name: "id", Type: sieve.KindInt},
		sieve.Column{Name: "owner", Type: sieve.KindInt},
		sieve.Column{Name: "v", Type: sieve.KindInt},
	)
	if _, err := db.CreateTable("events", schema); err != nil {
		t.Fatal(err)
	}
	rows := make([]sieve.Row, 0, n)
	for i := 0; i < n; i++ {
		rows = append(rows, sieve.Row{sieve.Int(int64(i)), sieve.Int(7), sieve.Int(int64(i % 10))})
	}
	if err := db.BulkInsert("events", rows); err != nil {
		t.Fatal(err)
	}
	store, err := sieve.NewStore(db)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sieve.New(store, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Protect("events"); err != nil {
		t.Fatal(err)
	}
	if err := store.Insert(&sieve.Policy{
		Owner: 7, Querier: "alice", Purpose: "audit", Relation: "events", Action: sieve.Allow,
	}); err != nil {
		t.Fatal(err)
	}
	return m, db
}

// TestSessionContextCancellationMidScan verifies that cancelling the
// context mid-iteration stops the executor within its check interval
// rather than finishing the scan.
func TestSessionContextCancellationMidScan(t *testing.T) {
	const n = 20000
	m, _ := buildScanDB(t, n, sieve.WithForcedStrategy(sieve.LinearScan))
	sess := m.NewSession(sieve.Metadata{Querier: "alice", Purpose: "audit"})

	ctx, cancel := context.WithCancel(context.Background())
	rows, err := sess.Query(ctx, "SELECT id FROM events")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	cancel()
	extra := 0
	for rows.Next() {
		extra++
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", rows.Err())
	}
	// The executor polls the context every few dozen row operations; a
	// cancelled scan must stop well short of the table.
	if extra > 512 {
		t.Fatalf("scan produced %d rows after cancellation", extra)
	}

	// A context cancelled before the query starts fails up front.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := sess.Execute(done, "SELECT id FROM events"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Execute on cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestRowsEarlyCloseUnderLimit verifies streaming early termination: both
// an early Rows.Close and a satisfied LIMIT must stop the underlying
// guarded scan instead of reading the whole relation.
func TestRowsEarlyCloseUnderLimit(t *testing.T) {
	const n = 20000
	m, db := buildScanDB(t, n, sieve.WithForcedStrategy(sieve.LinearScan))
	sess := m.NewSession(sieve.Metadata{Querier: "alice", Purpose: "audit"})
	ctx := context.Background()

	// Warm the guard cache so the measured queries only scan.
	if _, err := sess.Execute(ctx, "SELECT count(*) FROM events"); err != nil {
		t.Fatal(err)
	}

	db.Counters.Reset()
	rows, err := sess.Query(ctx, "SELECT id FROM events")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5 && rows.Next(); i++ {
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if got := db.Counters.TuplesRead; got >= n/2 {
		t.Fatalf("early Close read %d tuples of %d; scan did not terminate early", got, n)
	}

	db.Counters.Reset()
	res, err := sess.Execute(ctx, "SELECT id FROM events LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("LIMIT 5 returned %d rows", len(res.Rows))
	}
	if got := db.Counters.TuplesRead; got >= n/2 {
		t.Fatalf("LIMIT 5 read %d tuples of %d; scan did not terminate early", got, n)
	}
}

// TestPreparedPlanCacheInvalidation verifies that a Stmt reuses its
// rewritten plan across executions and transparently re-rewrites after
// AddPolicy and RevokePolicy.
func TestPreparedPlanCacheInvalidation(t *testing.T) {
	db := sieve.NewDB(sieve.MySQL())
	schema := sieve.MustSchema(
		sieve.Column{Name: "id", Type: sieve.KindInt},
		sieve.Column{Name: "owner", Type: sieve.KindInt},
	)
	if _, err := db.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		if err := db.Insert("t", sieve.Row{sieve.Int(i), sieve.Int(i % 2)}); err != nil {
			t.Fatal(err)
		}
	}
	store, _ := sieve.NewStore(db)
	m, err := sieve.New(store)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Protect("t"); err != nil {
		t.Fatal(err)
	}
	if err := m.AddPolicy(&sieve.Policy{
		Owner: 0, Querier: "alice", Purpose: "audit", Relation: "t", Action: sieve.Allow,
	}); err != nil {
		t.Fatal(err)
	}

	sess := m.NewSession(sieve.Metadata{Querier: "alice", Purpose: "audit"})
	stmt, err := m.Prepare("SELECT id FROM t")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	countRows := func() int {
		t.Helper()
		res, err := stmt.Execute(ctx, sess)
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Rows)
	}

	if got := countRows(); got != 5 {
		t.Fatalf("initial visible rows = %d, want 5", got)
	}
	if got := countRows(); got != 5 {
		t.Fatalf("repeat visible rows = %d, want 5", got)
	}
	if stmt.Rewrites() != 1 {
		t.Fatalf("rewrites after 2 executions = %d, want 1 (plan not reused)", stmt.Rewrites())
	}

	// Widening the grant set must invalidate the cached plan.
	second := &sieve.Policy{
		Owner: 1, Querier: "alice", Purpose: "audit", Relation: "t", Action: sieve.Allow,
	}
	if err := m.AddPolicy(second); err != nil {
		t.Fatal(err)
	}
	if got := countRows(); got != 10 {
		t.Fatalf("after AddPolicy visible rows = %d, want 10 (stale plan served)", got)
	}
	if stmt.Rewrites() != 2 {
		t.Fatalf("rewrites after AddPolicy = %d, want 2", stmt.Rewrites())
	}

	// Revocation must invalidate it again and shrink the result.
	if err := m.RevokePolicy(second.ID); err != nil {
		t.Fatal(err)
	}
	if got := countRows(); got != 5 {
		t.Fatalf("after RevokePolicy visible rows = %d, want 5 (stale plan served)", got)
	}
	if stmt.Rewrites() != 3 {
		t.Fatalf("rewrites after RevokePolicy = %d, want 3", stmt.Rewrites())
	}
}

// TestConcurrentSessionsSharedMiddleware runs several sessions (distinct
// queriers, so distinct guarded expressions regenerate concurrently) plus
// a policy writer against one Middleware. Run under -race this exercises
// the executor's per-query counters, the shared prepared-statement plan
// cache, and the guard persistence tables.
func TestConcurrentSessionsSharedMiddleware(t *testing.T) {
	const (
		queriers = 6
		rowsPerQ = 200
		iters    = 30
	)
	db := sieve.NewDB(sieve.MySQL())
	schema := sieve.MustSchema(
		sieve.Column{Name: "id", Type: sieve.KindInt},
		sieve.Column{Name: "owner", Type: sieve.KindInt},
	)
	if _, err := db.CreateTable("t", schema); err != nil {
		t.Fatal(err)
	}
	rows := make([]sieve.Row, 0, queriers*rowsPerQ)
	id := int64(0)
	for q := 0; q < queriers; q++ {
		for i := 0; i < rowsPerQ; i++ {
			rows = append(rows, sieve.Row{sieve.Int(id), sieve.Int(int64(q))})
			id++
		}
	}
	if err := db.BulkInsert("t", rows); err != nil {
		t.Fatal(err)
	}
	store, _ := sieve.NewStore(db)
	m, err := sieve.New(store)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Protect("t"); err != nil {
		t.Fatal(err)
	}
	for q := 0; q < queriers; q++ {
		if err := m.AddPolicy(&sieve.Policy{
			Owner: int64(q), Querier: fmt.Sprintf("user%d", q), Purpose: "audit",
			Relation: "t", Action: sieve.Allow,
		}); err != nil {
			t.Fatal(err)
		}
	}
	shared, err := m.Prepare("SELECT id FROM t")
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, queriers+1)
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			sess := m.NewSession(sieve.Metadata{Querier: fmt.Sprintf("user%d", q), Purpose: "audit"})
			for i := 0; i < iters; i++ {
				var got int
				switch i % 3 {
				case 0: // ad-hoc materialised
					res, err := sess.Execute(ctx, "SELECT id FROM t")
					if err != nil {
						errs <- err
						return
					}
					got = len(res.Rows)
				case 1: // ad-hoc streaming
					rs, err := sess.Query(ctx, "SELECT id FROM t")
					if err != nil {
						errs <- err
						return
					}
					for rs.Next() {
						got++
					}
					if err := rs.Err(); err != nil {
						errs <- err
						return
					}
					rs.Close()
				default: // shared prepared statement
					res, err := shared.Execute(ctx, sess)
					if err != nil {
						errs <- err
						return
					}
					got = len(res.Rows)
				}
				if got < rowsPerQ {
					errs <- fmt.Errorf("user%d iteration %d saw %d rows, want >= %d", q, i, got, rowsPerQ)
					return
				}
			}
		}(q)
	}
	// A concurrent writer inserts additional policies for existing
	// queriers, exercising trigger-driven invalidation under load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := m.AddPolicy(&sieve.Policy{
				Owner: int64(i % queriers), Querier: fmt.Sprintf("user%d", i%queriers),
				Purpose: "audit", Relation: "t", Action: sieve.Allow,
				Conditions: []sieve.ObjectCondition{
					sieve.Compare("id", sieve.Ge, sieve.Int(0)),
				},
			}); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
