package sieve_test

import (
	"context"
	"database/sql"
	"fmt"
	"log"

	sieve "github.com/sieve-db/sieve"
	"github.com/sieve-db/sieve/sievesql"
)

// Example demonstrates the minimal SIEVE session of the package comment:
// one protected relation, one policy, one session streaming an enforced
// query.
func Example() {
	db := sieve.NewDB(sieve.MySQL())
	schema := sieve.MustSchema(
		sieve.Column{Name: "id", Type: sieve.KindInt},
		sieve.Column{Name: "owner", Type: sieve.KindInt},
		sieve.Column{Name: "wifiAP", Type: sieve.KindInt},
	)
	if _, err := db.CreateTable("WiFi_Dataset", schema); err != nil {
		log.Fatal(err)
	}
	for _, r := range []sieve.Row{
		{sieve.Int(1), sieve.Int(120), sieve.Int(1200)},
		{sieve.Int(2), sieve.Int(999), sieve.Int(1200)},
	} {
		if err := db.Insert("WiFi_Dataset", r); err != nil {
			log.Fatal(err)
		}
	}
	store, _ := sieve.NewStore(db)
	m, _ := sieve.New(store)
	if err := m.Protect("WiFi_Dataset"); err != nil {
		log.Fatal(err)
	}
	_ = store.Insert(&sieve.Policy{
		Owner: 120, Querier: "Prof. Smith", Purpose: "Attendance",
		Relation: "WiFi_Dataset", Action: sieve.Allow,
	})

	sess := m.NewSession(sieve.Metadata{Querier: "Prof. Smith", Purpose: "Attendance"})
	rows, err := sess.Query(context.Background(), "SELECT id FROM WiFi_Dataset")
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	visible := 0
	for rows.Next() {
		visible++
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("visible rows:", visible)
	// Output: visible rows: 1
}

// ExampleStmt prepares a query once and executes it repeatedly: the parse
// and the policy rewrite are paid on the first call only, until a policy
// change invalidates the cached plan.
func ExampleStmt() {
	db := sieve.NewDB(sieve.MySQL())
	schema := sieve.MustSchema(
		sieve.Column{Name: "id", Type: sieve.KindInt},
		sieve.Column{Name: "owner", Type: sieve.KindInt},
	)
	if _, err := db.CreateTable("t", schema); err != nil {
		log.Fatal(err)
	}
	for i := int64(1); i <= 4; i++ {
		if err := db.Insert("t", sieve.Row{sieve.Int(i), sieve.Int(i % 2)}); err != nil {
			log.Fatal(err)
		}
	}
	store, _ := sieve.NewStore(db)
	m, _ := sieve.New(store)
	if err := m.Protect("t"); err != nil {
		log.Fatal(err)
	}
	_ = store.Insert(&sieve.Policy{
		Owner: 1, Querier: "alice", Purpose: "audit", Relation: "t", Action: sieve.Allow,
	})

	sess := m.NewSession(sieve.Metadata{Querier: "alice", Purpose: "audit"})
	stmt, err := m.Prepare("SELECT id FROM t")
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		res, err := stmt.Execute(ctx, sess)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("run", i, "rows:", len(res.Rows), "rewrites:", stmt.Rewrites())
	}
	// Output:
	// run 0 rows: 2 rewrites: 1
	// run 1 rows: 2 rewrites: 1
	// run 2 rows: 2 rewrites: 1
}

// ExampleMiddleware_Rewrite shows how to inspect the SQL SIEVE would send
// to the underlying database.
func ExampleMiddleware_Rewrite() {
	db := sieve.NewDB(sieve.MySQL())
	schema := sieve.MustSchema(
		sieve.Column{Name: "id", Type: sieve.KindInt},
		sieve.Column{Name: "owner", Type: sieve.KindInt},
	)
	if _, err := db.CreateTable("t", schema); err != nil {
		log.Fatal(err)
	}
	store, _ := sieve.NewStore(db)
	m, _ := sieve.New(store)
	if err := m.Protect("t"); err != nil {
		log.Fatal(err)
	}
	_ = store.Insert(&sieve.Policy{
		Owner: 7, Querier: "alice", Purpose: "audit", Relation: "t", Action: sieve.Allow,
	})
	sql, report, err := m.Rewrite("SELECT * FROM t", sieve.Metadata{Querier: "alice", Purpose: "audit"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sql)
	fmt.Println("policies:", report.Decisions[0].Policies)
	// Output:
	// WITH t_sieve AS (SELECT * FROM t FORCE INDEX (owner) WHERE t.owner = 7 AND t.owner = 7) SELECT * FROM t_sieve AS t
	// policies: 1
}

// Example_databaseSQL mirrors examples/sqldriver: SIEVE behind Go's
// standard database/sql API. The DSN names the querier and purpose;
// every connection is a policy-enforced session, so the query loop is
// plain database/sql code.
func Example_databaseSQL() {
	db := sieve.NewDB(sieve.MySQL())
	schema := sieve.MustSchema(
		sieve.Column{Name: "id", Type: sieve.KindInt},
		sieve.Column{Name: "owner", Type: sieve.KindInt},
	)
	if _, err := db.CreateTable("visits", schema); err != nil {
		log.Fatal(err)
	}
	for i := int64(1); i <= 6; i++ {
		if err := db.Insert("visits", sieve.Row{sieve.Int(i), sieve.Int(100 + i%2)}); err != nil {
			log.Fatal(err)
		}
	}
	store, _ := sieve.NewStore(db)
	m, _ := sieve.New(store)
	if err := m.Protect("visits"); err != nil {
		log.Fatal(err)
	}
	_ = store.Insert(&sieve.Policy{
		Owner: 101, Querier: "alice", Purpose: "audit", Relation: "visits", Action: sieve.Allow,
	})

	sievesql.SetDefault(m)
	sqldb, err := sql.Open("sieve", "querier=alice&purpose=audit")
	if err != nil {
		log.Fatal(err)
	}
	defer sqldb.Close()
	var n int
	if err := sqldb.QueryRow("SELECT count(*) FROM visits").Scan(&n); err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice counts", n, "rows via database/sql")
	// Output: alice counts 3 rows via database/sql
}

// ExampleFactorDeny folds a deny policy into the allow set (§3.1).
func ExampleFactorDeny() {
	allow := &sieve.Policy{
		Owner: 9, Querier: "john", Purpose: "social", Relation: "loc", Action: sieve.Allow,
	}
	deny := &sieve.Policy{
		Owner: 9, Querier: sieve.AnyQuerier, Purpose: sieve.AnyPurpose,
		Relation: "loc", Action: sieve.Deny,
		Conditions: []sieve.ObjectCondition{
			sieve.Compare("room", sieve.Eq, sieve.Str("office")),
		},
	}
	out := sieve.FactorDeny([]*sieve.Policy{allow}, []*sieve.Policy{deny})
	for _, p := range out {
		fmt.Println(p.Conditions[0].String())
	}
	// Output: room != 'office'
}
