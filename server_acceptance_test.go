package sieve_test

import (
	"context"
	"net"
	"reflect"
	"testing"
	"time"

	sieve "github.com/sieve-db/sieve"
	"github.com/sieve-db/sieve/client"
	"github.com/sieve-db/sieve/internal/server"
	"github.com/sieve-db/sieve/internal/workload"
)

// drainWire reads a wire stream to completion as [][]any.
func drainWire(t *testing.T, rows *client.Rows, err error) [][]any {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var out [][]any
	for rows.Next() {
		r := rows.Row()
		cp := make([]any, len(r))
		copy(cp, r)
		out = append(out, cp)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServerAcceptance is the acceptance gate for the networked
// middleware: the demo campus served over TCP must be indistinguishable —
// row for row, value for value — from holding the middleware in process,
// for the whole examples corpus and for the default-deny and
// policy-change paths, finishing with a clean drain.
func TestServerAcceptance(t *testing.T) {
	demo, err := workload.NewDemo(sieve.MySQL())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Middleware: demo.M, AllowDemoTokens: true})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	url := "http://" + l.Addr().String()
	ctx := context.Background()

	// The examples corpus over the wire vs the same session shape in
	// process. The wire decodes into Go values; client.FromValue is the
	// documented mapping, so applying it to the in-process rows is the
	// exact parity oracle.
	querier := demo.Querier("auto")
	inSess := demo.M.NewSession(sieve.Metadata{Querier: querier, Purpose: "analytics"})
	wireSess, err := client.New(url, "demo:"+querier+"|analytics").OpenSession(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, q := range demo.Campus.CorpusQueries() {
		rows, err := inSess.Query(ctx, q.SQL)
		if err != nil {
			t.Fatalf("%s: in-process: %v", q.Name, err)
		}
		var want [][]any
		cols := rows.Columns()
		for rows.Next() {
			r := rows.Row()
			conv := make([]any, len(r))
			for i, v := range r {
				conv[i] = client.FromValue(v)
			}
			want = append(want, conv)
		}
		if err := rows.Err(); err != nil {
			t.Fatalf("%s: in-process: %v", q.Name, err)
		}
		rows.Close()

		wrows, err := wireSess.Query(ctx, q.SQL)
		if err != nil {
			t.Fatalf("%s: wire: %v", q.Name, err)
		}
		if got := wrows.Columns(); !reflect.DeepEqual(got, cols) {
			t.Fatalf("%s: columns %v over the wire, %v in process", q.Name, got, cols)
		}
		got := drainWire(t, wrows, nil)
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Fatalf("%s: wire result diverges from in-process (%d vs %d rows)",
				q.Name, len(got), len(want))
		}
		if len(want) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("every corpus query came back empty; the parity check proved nothing")
	}

	// Default deny travels too: a querier with no policies gets a clean
	// empty result, not an error and not someone else's rows.
	nobody, err := client.New(url, "demo:nobody|analytics").OpenSession(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	st, err := nobody.Prepare(ctx, "SELECT id, owner FROM "+workload.TableWiFi+" ORDER BY id LIMIT 50")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := st.Query(ctx)
	if got := drainWire(t, rows, err); len(got) != 0 {
		t.Fatalf("default deny leaked %d rows over the wire", len(got))
	}

	// A policy granted through the wire takes effect on the SAME prepared
	// statement — the epoch bump invalidates its cached rewrite, no
	// reconnect, no re-prepare. Campus owners are generated, so probe the
	// policy corpus for one that owns rows.
	admin := client.New(url, "demo:root|admin")
	grantID := int64(-1)
	for i := 0; i < len(demo.Policies) && i < 16; i++ {
		id, err := admin.AddPolicy(ctx, client.Policy{
			Owner:    demo.Policies[i].Owner,
			Querier:  "nobody",
			Purpose:  "analytics",
			Relation: workload.TableWiFi,
		})
		if err != nil {
			t.Fatal(err)
		}
		rows, err := st.Query(ctx)
		if got := drainWire(t, rows, err); len(got) > 0 {
			grantID = id
			break
		}
		if err := admin.RevokePolicy(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	if grantID < 0 {
		t.Fatal("no probed owner had wifi rows; cannot prove the grant path")
	}

	// Revocation flows back through the same statement.
	if err := admin.RevokePolicy(ctx, grantID); err != nil {
		t.Fatal(err)
	}
	rows, err = st.Query(ctx)
	if got := drainWire(t, rows, err); len(got) != 0 {
		t.Fatalf("revoked grant still returns %d rows", len(got))
	}

	// Finally the lifecycle: a quiet server drains promptly and cleanly.
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if _, err := client.New(url, "demo:nobody|analytics").OpenSession(ctx, ""); err == nil {
		t.Fatal("server still accepting sessions after drain")
	}
}
